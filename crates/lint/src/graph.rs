//! Workspace call graph and the interprocedural nondeterminism taint
//! analysis (rule `T1`).
//!
//! The token-level rules (D1–D3) see one line at a time; this analysis
//! sees the whole workspace. Taint is seeded at the sources the parser
//! detected ([`crate::parse::SourceKind`]), propagated backwards through
//! the call graph, and reported wherever it reaches a **sink** — a place
//! whose output is covered by the bit-for-bit replication contract:
//!
//! * a production `Stage::process` implementation (stage outputs feed
//!   the run digest),
//! * any production function in the write-ahead journal module (frames
//!   must replay identically on resume),
//! * any production function whose name contains `digest` or
//!   `fingerprint` (hashed state by definition).
//!
//! Name resolution is deliberately lightweight: a call edge goes to every
//! workspace function the callee name could plausibly mean (qualified
//! calls prefer `Type::name` matches; method calls match any impl method
//! of that name). That over-approximates — soundly for this catalogue:
//! sources are rare, so false chains only appear when a same-named
//! function actually contains nondeterminism, which is worth a look
//! anyway. Diagnostics carry the full (shortest) call chain so the report
//! reads as evidence, not as an accusation.

use crate::parse::{FileSummary, FnItem, SourceKind};
use crate::rules::Finding;

/// A borrowed reference to one fn across the workspace summary set.
#[derive(Clone, Copy)]
struct FnRef<'a> {
    file: &'a str,
    item: &'a FnItem,
}

impl<'a> FnRef<'a> {
    /// Display name: `Type::name` or `name`.
    fn label(&self) -> String {
        match &self.item.self_ty {
            Some(ty) => format!("{ty}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }
}

/// Why a fn is a sink, for the diagnostic.
fn sink_role(f: &FnRef<'_>) -> Option<&'static str> {
    if f.item.is_test {
        return None;
    }
    if f.item.trait_name.as_deref() == Some("Stage") && f.item.name == "process" {
        return Some("production `Stage::process` path");
    }
    if f.file == "crates/runtime/src/journal.rs" {
        return Some("journal frame path");
    }
    let n = &f.item.name;
    if n.contains("fingerprint") || n.contains("digest") {
        return Some("digest/fingerprint computation");
    }
    None
}

/// Runs the taint analysis over all file summaries, returning `T1`
/// findings anchored at each offending sink with the full call chain.
pub fn taint_findings(summaries: &[FileSummary]) -> Vec<Finding> {
    // Index every production fn.
    let mut fns: Vec<FnRef<'_>> = Vec::new();
    for s in summaries {
        for f in &s.fns {
            if !f.is_test {
                fns.push(FnRef {
                    file: &s.rel,
                    item: f,
                });
            }
        }
    }
    // Name → fn indices; (type, name) resolution filters on self_ty.
    let mut by_name: std::collections::BTreeMap<&str, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(&f.item.name).or_default().push(i);
    }

    // Adjacency: caller → callees (deduped, deterministic order).
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (i, f) in fns.iter().enumerate() {
        for call in &f.item.calls {
            let Some(cands) = by_name.get(call.name.as_str()) else {
                continue; // std / vendored / macro — outside the graph
            };
            match (&call.qual, call.method) {
                (Some(q), _) => {
                    // `Type::name(..)`: exact impl-type match; if the
                    // qualifier matches no impl, it's an out-of-graph path.
                    for &c in cands {
                        if fns[c].item.self_ty.as_deref() == Some(q.as_str()) {
                            edges[i].push(c);
                        }
                    }
                }
                (None, true) => {
                    // `.name(..)`: any impl method of that name.
                    for &c in cands {
                        if fns[c].item.self_ty.is_some() {
                            edges[i].push(c);
                        }
                    }
                }
                (None, false) => {
                    // free call: any free fn of that name; fall back to
                    // impl fns only when no free fn exists (e.g. a
                    // `use Type::assoc`-style import, rare).
                    let free: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&c| fns[c].item.self_ty.is_none())
                        .collect();
                    if free.is_empty() {
                        edges[i].extend(cands.iter().copied());
                    } else {
                        edges[i].extend(free);
                    }
                }
            }
        }
        edges[i].sort_unstable();
        edges[i].dedup();
    }

    // BFS from each sink; report the shortest chain per (sink, source
    // kind). Walking the same span via several paths yields one
    // diagnostic, not one per path.
    let mut out = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        let Some(role) = sink_role(f) else { continue };
        let mut reported: Vec<SourceKind> = Vec::new();
        // parent pointers for chain reconstruction
        let mut prev: Vec<Option<usize>> = vec![None; fns.len()];
        let mut seen = vec![false; fns.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[i] = true;
        queue.push_back(i);
        while let Some(cur) = queue.pop_front() {
            for s in &fns[cur].item.sources {
                if reported.contains(&s.kind) {
                    continue;
                }
                reported.push(s.kind);
                // Reconstruct sink → … → source-bearing fn.
                let mut chain = Vec::new();
                let mut at = Some(cur);
                while let Some(x) = at {
                    chain.push(fns[x].label());
                    at = prev[x];
                }
                chain.reverse();
                let via = chain.join(" -> ");
                let src_at = format!("{}:{}", fns[cur].file, s.line);
                out.push(Finding {
                    rule: "T1",
                    file: f.file.to_string(),
                    line: f.item.line,
                    col: f.item.col,
                    message: format!(
                        "`{}` is a {role} but reaches a {} source: {} at {src_at} \
                         [call chain: {via}]",
                        f.label(),
                        s.kind.describe(),
                        s.what,
                    ),
                });
            }
            for &next in &edges[cur] {
                if !seen[next] {
                    seen[next] = true;
                    prev[next] = Some(cur);
                    queue.push_back(next);
                }
            }
        }
    }
    out
}
