//! `coachlm-lint` — workspace-wide determinism static analysis.
//!
//! The executor's bit-for-bit replication contract rests on invariants the
//! compiler cannot see: RNG flows only from per-`(stage, item)` seeds, no
//! wall-clock reads in stage bodies, no default-hasher iteration order
//! leaking into outputs, no panics in production chains. This crate
//! promotes those invariants from "tested" to "statically enforced on
//! every commit", in two layers:
//!
//! * **Token-level rules** (`D1`/`D2`/`D3`/`P1`/`C1`, see
//!   [`rules::RULES`]): a dependency-free lexer (own lexer, no `syn`)
//!   walks every workspace source file and reports span-accurate
//!   diagnostics for line-local violations.
//! * **`coachlm-analyze`** — parsing, interprocedural analyses on top of
//!   the same lexer: a recursive-descent parser ([`parse`]) recovers
//!   per-file item trees (fns, impls, calls, fields), a workspace call
//!   graph carries **nondeterminism taint** from sources to the
//!   replication-critical sinks (`T1`, [`graph`]), and the
//!   **fingerprint-coverage check** (`F1`, [`coverage`]) proves every
//!   field of a fingerprinted policy struct is folded into its journal
//!   fingerprint. Per-file work is cached by content hash ([`cachefile`])
//!   so the CI gate stays fast on warm trees.
//!
//! Suppression is only possible via an inline
//! `// lint: allow(<rule>, reason = "...")` comment — the reason is
//! mandatory, malformed or unused directives are themselves violations.
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod allow;
pub mod cachefile;
pub mod coverage;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scope;
pub mod walk;

use rules::Finding;
use std::path::Path;
use walk::FileClass;

/// Everything one file contributes: its own findings (token rules +
/// directive hygiene) and the parsed summary the workspace analyses use.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// File-local findings, sorted by (line, col, rule).
    pub findings: Vec<Finding>,
    /// Parsed item summary (fns, calls, sources, types, fields).
    pub summary: parse::FileSummary,
}

/// Result of a full lint + analysis run.
#[derive(Debug)]
#[must_use]
pub struct LintRun {
    /// All surviving findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of source files checked.
    pub files_checked: usize,
    /// IO errors encountered while walking (nonfatal, but reported and
    /// distinguished from findings in the CLI exit code).
    pub io_errors: Vec<String>,
    /// Files whose structure the parser could not recover (unbalanced
    /// braces); their interprocedural coverage is incomplete.
    pub parse_errors: Vec<String>,
    /// Files served from the per-file-hash cache.
    pub cache_hits: usize,
    /// Files analyzed fresh.
    pub cache_misses: usize,
}

impl LintRun {
    /// `true` when the tree is clean and fully analyzed.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.io_errors.is_empty() && self.parse_errors.is_empty()
    }
}

/// Lints one source string under a file classification — token-level
/// rules only, exactly the historical `coachlm-lint` behaviour. Public so
/// fixture tests can drive single rules without touching the filesystem.
/// The interprocedural analyses need the whole workspace; drive them with
/// [`analyze_sources`].
pub fn lint_source(class: &FileClass, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let mut allows = collect_allows(&lexed);
    rules::check_file(class, &lexed, &mut allows)
}

/// Runs the full per-file pass — token rules, parser summary, directive
/// hygiene — on one source string.
pub fn analyze_source(class: &FileClass, src: &str) -> FileAnalysis {
    let lexed = lexer::lex(src);
    let mut allows = collect_allows(&lexed);
    let mut findings = rules::check_file_rules(class, &lexed, &mut allows);
    // The parser consumes allows too (T1 source seeds, F1 field
    // exclusions), so directive hygiene must come after it.
    let summary = parse::summarize(class, &lexed, &mut allows);
    findings.extend(rules::directive_findings(class, &allows));
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    FileAnalysis { findings, summary }
}

fn collect_allows(lexed: &lexer::Lexed) -> allow::Allows {
    // An own-line directive binds to the next line carrying code.
    let next_code_line = |line: u32| {
        lexed
            .toks
            .iter()
            .map(|t| t.line)
            .find(|l| *l > line)
            .unwrap_or(line)
    };
    allow::collect(&lexed.comments, next_code_line)
}

/// Runs the complete analysis — per-file rules plus the workspace-wide
/// taint and fingerprint-coverage passes — over in-memory sources.
/// Findings are deduplicated by span and sorted. This is the test-harness
/// entry point; [`run_lint`] is the filesystem one.
pub fn analyze_sources(inputs: &[(FileClass, String)]) -> Vec<Finding> {
    let analyses: Vec<FileAnalysis> = inputs
        .iter()
        .map(|(class, src)| analyze_source(class, src))
        .collect();
    let mut findings: Vec<Finding> = analyses.iter().flat_map(|a| a.findings.clone()).collect();
    let summaries: Vec<parse::FileSummary> = analyses.into_iter().map(|a| a.summary).collect();
    findings.extend(graph::taint_findings(&summaries));
    findings.extend(coverage::coverage_findings(&summaries));
    finish(findings)
}

/// Sorts by (file, line, col, rule, message) and deduplicates identical
/// findings — the same violation reached via several walk paths (e.g. two
/// call chains into one source) reports once. The message is part of the
/// identity: two taint findings of different source kinds anchored at the
/// same sink are distinct diagnostics, not duplicates.
fn finish(mut findings: Vec<Finding>) -> Vec<Finding> {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule,
            b.message.as_str(),
        ))
    });
    findings.dedup_by(|a, b| {
        a.rule == b.rule
            && a.file == b.file
            && a.line == b.line
            && a.col == b.col
            && a.message == b.message
    });
    findings
}

/// Lints + analyzes every workspace source file under `root`, using (and
/// refreshing) the default per-file cache at
/// `<root>/target/coachlm-lint.cache`.
pub fn run_lint(root: &Path) -> LintRun {
    run_lint_with(root, Some(&root.join("target/coachlm-lint.cache")))
}

/// Like [`run_lint`], with explicit cache control: `None` disables the
/// cache entirely (every file analyzed fresh, nothing written).
pub fn run_lint_with(root: &Path, cache_path: Option<&Path>) -> LintRun {
    let mut io_errors = Vec::new();
    let files = walk::source_files(root, &mut io_errors);
    let mut cache = match cache_path {
        Some(p) => cachefile::FileCache::load(p),
        None => cachefile::FileCache::disabled(),
    };
    let mut findings = Vec::new();
    let mut summaries = Vec::new();
    let mut parse_errors = Vec::new();
    let mut files_checked = 0usize;
    for rel in &files {
        let class = FileClass::classify(rel);
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => {
                files_checked += 1;
                let hash = cachefile::fx64(src.as_bytes());
                let analysis = match cache.get(rel, hash) {
                    Some(hit) => hit,
                    None => {
                        let fresh = analyze_source(&class, &src);
                        cache.put(rel, hash, fresh.clone());
                        fresh
                    }
                };
                findings.extend(analysis.findings);
                parse_errors.extend(analysis.summary.parse_errors.iter().cloned());
                summaries.push(analysis.summary);
            }
            Err(e) => io_errors.push(format!("cannot read {rel}: {e}")),
        }
    }
    findings.extend(graph::taint_findings(&summaries));
    findings.extend(coverage::coverage_findings(&summaries));
    if let Err(e) = cache.save() {
        // Best-effort accelerator: a failed write is worth a note, not a
        // failed run.
        io_errors.push(format!("cache: {e}"));
    }
    LintRun {
        findings: finish(findings),
        files_checked,
        io_errors,
        parse_errors,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
    }
}
