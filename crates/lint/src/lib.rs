//! `coachlm-lint` — a workspace-wide determinism & panic-safety lint pass.
//!
//! The executor's bit-for-bit replication contract rests on invariants the
//! compiler cannot see: RNG flows only from per-`(stage, item)` seeds, no
//! wall-clock reads in stage bodies, no default-hasher iteration order
//! leaking into outputs, no panics in production chains. This crate promotes
//! those invariants from "tested" to "statically enforced on every commit":
//! a dependency-free token-level analysis (own lexer, no `syn`) walks every
//! workspace source file and reports span-accurate diagnostics for the rule
//! catalogue D1/D2/D3/P1/C1 (see [`rules::RULES`]).
//!
//! Suppression is only possible via an inline
//! `// lint: allow(<rule>, reason = "...")` comment — the reason is
//! mandatory, malformed or unused directives are themselves violations.
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod walk;

use rules::Finding;
use std::path::Path;
use walk::FileClass;

/// Result of a full lint run.
#[derive(Debug)]
#[must_use]
pub struct LintRun {
    /// All surviving findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of source files checked.
    pub files_checked: usize,
    /// IO errors encountered while walking (nonfatal, but reported).
    pub io_errors: Vec<String>,
}

impl LintRun {
    /// `true` when the tree is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.io_errors.is_empty()
    }
}

/// Lints one source string under a file classification. Public so fixture
/// tests can drive single rules without touching the filesystem.
pub fn lint_source(class: &FileClass, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    // An own-line directive binds to the next line carrying code.
    let next_code_line = |line: u32| {
        lexed
            .toks
            .iter()
            .map(|t| t.line)
            .find(|l| *l > line)
            .unwrap_or(line)
    };
    let mut allows = allow::collect(&lexed.comments, next_code_line);
    rules::check_file(class, &lexed, &mut allows)
}

/// Lints every workspace source file under `root`.
pub fn run_lint(root: &Path) -> LintRun {
    let mut io_errors = Vec::new();
    let files = walk::source_files(root, &mut io_errors);
    let mut findings = Vec::new();
    let mut files_checked = 0usize;
    for rel in &files {
        let class = FileClass::classify(rel);
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => {
                files_checked += 1;
                findings.extend(lint_source(&class, &src));
            }
            Err(e) => io_errors.push(format!("cannot read {rel}: {e}")),
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    LintRun {
        findings,
        files_checked,
        io_errors,
    }
}
