//! Deterministic workspace walk and per-file rule scoping.

use std::path::{Path, PathBuf};

/// Where a source file sits, and therefore which rules apply to it.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Under a `tests/` or `benches/` directory: D1/D3/P1/C1 exempt
    /// (D2 still applies — test outcomes must replicate too).
    pub test_file: bool,
    /// Under an `examples/` directory.
    pub example_file: bool,
    /// In `crates/bench` (offline repro/bench binaries): P1 exempt.
    pub bench_crate: bool,
    /// In `crates/runtime`: C1 exempt (the executor owns concurrency).
    pub runtime_crate: bool,
    /// The runtime's simulated-time module: D1 exempt (it is the one
    /// place allowed to touch `Instant`).
    pub simtime_module: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path.
    pub fn classify(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let in_dir = |d: &str| parts.contains(&d);
        FileClass {
            rel: rel.to_string(),
            test_file: in_dir("tests") || in_dir("benches"),
            example_file: in_dir("examples"),
            bench_crate: rel.starts_with("crates/bench/"),
            runtime_crate: rel.starts_with("crates/runtime/"),
            simtime_module: rel == "crates/runtime/src/simtime.rs",
        }
    }
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "compat", "fixtures", "results"];

/// Walks `root` for `.rs` files in deterministic (sorted) order, returning
/// workspace-relative paths. IO errors on individual entries are reported
/// through `errors` rather than panicking.
pub fn source_files(root: &Path, errors: &mut Vec<String>) -> Vec<String> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out, errors);
    out.sort();
    out
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<String>, errors: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("cannot read {}: {e}", dir.display()));
            return;
        }
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        match entry {
            Ok(e) => paths.push(e.path()),
            Err(e) => errors.push(format!("cannot read entry in {}: {e}", dir.display())),
        }
    }
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &p, out, errors);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = p.strip_prefix(root) {
                let rel: String = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
}
