//! Diagnostic rendering: human text and hand-rolled JSON (dependency-free).

use crate::rules::{Finding, RULES};

/// Renders findings as `file:line:col: [RULE] message` lines plus a
/// summary footer.
pub fn render_human(findings: &[Finding], files_checked: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.file, f.line, f.col, f.rule, f.message
        ));
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "coachlm-lint: clean — {files_checked} files, 0 violations\n"
        ));
    } else {
        out.push_str(&format!(
            "coachlm-lint: {} violation(s) in {files_checked} files\n",
            findings.len()
        ));
    }
    out
}

/// Renders findings as a stable JSON document.
pub fn render_json(findings: &[Finding], files_checked: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_checked\": {files_checked},\n"));
    out.push_str(&format!("  \"violations\": {},\n", findings.len()));
    out.push_str("  \"rules\": {\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        let comma = if i + 1 < RULES.len() { "," } else { "" };
        out.push_str(&format!(
            "    {}: {}{comma}\n",
            json_str(id),
            json_str(desc)
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}{comma}",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
