//! Test-scope detection over the significant-token stream.
//!
//! The rule catalogue distinguishes production code from test code inside
//! the same file: `#[cfg(test)]` modules, `#[test]` functions, and
//! `#[bench]` functions are exempt from the panic-safety and
//! iteration-order rules. This pass finds those attribute-guarded item
//! bodies by brace matching — no parser needed, because attributes and
//! braces are fully visible in the token stream and string/comment content
//! was already stripped by the lexer.

use crate::lexer::{Tok, TokKind};

/// Returns, for every token index, whether that token sits inside a
/// test-only item body.
pub fn test_scopes(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let (attr_end, is_test) = scan_attribute(toks, i + 1);
            if is_test {
                if let Some((body_start, body_end)) = find_item_body(toks, attr_end + 1) {
                    for flag in in_test
                        .iter_mut()
                        .take(body_end.min(toks.len() - 1) + 1)
                        .skip(body_start)
                    {
                        *flag = true;
                    }
                    i = attr_end + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Scans an attribute starting at its `[` token. Returns the index of the
/// closing `]` and whether the attribute marks test-only code.
///
/// Test-only means `#[test]`, `#[bench]`, or a `cfg(...)` whose token list
/// contains `test` without a `not` (so `#[cfg(not(test))]` stays
/// production).
fn scan_attribute(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_cfg = false;
    let mut has_test = false;
    let mut has_bench = false;
    let mut has_not = false;
    let mut first_ident: Option<&str> = None;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            (TokKind::Ident, name) => {
                if first_ident.is_none() {
                    first_ident = Some(match name {
                        "test" => "test",
                        "bench" => "bench",
                        "cfg" => "cfg",
                        _ => "other",
                    });
                }
                match name {
                    "cfg" => has_cfg = true,
                    "test" => has_test = true,
                    "bench" => has_bench = true,
                    "not" => has_not = true,
                    _ => {}
                }
            }
            _ => {}
        }
        j += 1;
    }
    let is_test = match first_ident {
        Some("test") | Some("bench") => has_test || has_bench,
        Some("cfg") => has_cfg && has_test && !has_not,
        _ => false,
    };
    (j.min(toks.len().saturating_sub(1)), is_test)
}

/// From just past an attribute, finds the `{ … }` body of the annotated
/// item. Returns `None` for body-less items (`mod tests;`, `use …;`).
fn find_item_body(toks: &[Tok], mut i: usize) -> Option<(usize, usize)> {
    // Skip any further attributes between this one and the item.
    while i < toks.len()
        && toks[i].text == "#"
        && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[")
    {
        let (end, _) = scan_attribute(toks, i + 1);
        i = end + 1;
    }
    // Scan to the first `{` of the item, bailing on a top-level `;` (no
    // body). Parens/brackets/generics in the signature are skipped by depth
    // counting; `{` only appears once signature grouping is closed.
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            ";" if paren == 0 && bracket == 0 => return None,
            "{" if paren == 0 && bracket == 0 => {
                let start = i;
                let mut depth = 0i32;
                while i < toks.len() {
                    match toks[i].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((start, i));
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return Some((start, toks.len() - 1));
            }
            _ => {}
        }
        i += 1;
    }
    None
}
