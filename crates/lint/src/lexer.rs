//! A minimal Rust token lexer: just enough syntax awareness to tell code
//! from text.
//!
//! The rule matchers in [`crate::rules`] work on the significant-token
//! stream this module produces, so a `thread_rng` inside a string literal, a
//! doc comment, or a raw string can never fire a rule. Comments are captured
//! separately (with position) because the allow grammar lives in them.
//!
//! This is *not* a full Rust lexer — no float/suffix fidelity, no shebang
//! handling — but it is exact on the constructs that matter for span-level
//! static analysis: line comments, nested block comments, string literals
//! with escapes, raw strings with arbitrary `#` fences, byte strings, char
//! literals vs. lifetimes, and raw identifiers.

/// What kind of significant token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, fence stripped).
    Ident,
    /// Punctuation; `::` is pre-joined into a single token.
    Punct,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`), kept distinct so it never looks like a char.
    Lifetime,
}

/// One significant token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`]/[`TokKind::Char`] this is the raw
    /// source slice including quotes; rules never match inside it.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

/// One comment (line or block), with position and placement info.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body *without* the `//` / `/*` framing, untrimmed.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// `true` when no significant token precedes the comment on its line —
    /// i.e. the comment owns the line and an allow in it binds forward.
    pub own_line: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens, in source order.
    pub toks: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes one source file into significant tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    // Lines that carry at least one significant token, for `own_line`.
    let mut line_has_code: Vec<u32> = Vec::new();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => {
                        cur.bump();
                        let mut text = String::new();
                        while let Some(c) = cur.peek() {
                            if c == '\n' {
                                break;
                            }
                            text.push(c);
                            cur.bump();
                        }
                        out.comments.push(Comment {
                            text,
                            line,
                            own_line: true, // fixed up below
                        });
                    }
                    Some('*') => {
                        cur.bump();
                        let mut depth = 1u32;
                        let mut text = String::new();
                        while depth > 0 {
                            match cur.bump() {
                                Some('*') if cur.peek() == Some('/') => {
                                    cur.bump();
                                    depth -= 1;
                                    if depth > 0 {
                                        text.push_str("*/");
                                    }
                                }
                                Some('/') if cur.peek() == Some('*') => {
                                    cur.bump();
                                    depth += 1;
                                    text.push_str("/*");
                                }
                                Some(c) => text.push(c),
                                None => break,
                            }
                        }
                        out.comments.push(Comment {
                            text,
                            line,
                            own_line: true,
                        });
                    }
                    _ => push_tok(&mut out, &mut line_has_code, TokKind::Punct, "/", line, col),
                }
            }
            '"' => {
                let text = lex_string(&mut cur);
                push_tok(&mut out, &mut line_has_code, TokKind::Str, &text, line, col);
            }
            '\'' => {
                cur.bump();
                lex_char_or_lifetime(&mut cur, &mut out, &mut line_has_code, line, col);
            }
            c if is_ident_start(c) => {
                // `r"`/`r#"`/`b"`/`br#"` prefixes start literals, not idents.
                let mut ident = String::new();
                ident.push(c);
                cur.bump();
                match (ident.as_str(), cur.peek()) {
                    ("r" | "b" | "br", Some('"')) | ("r" | "br", Some('#')) => {
                        if lex_raw_or_byte_tail(&mut cur, &mut ident) {
                            push_tok(
                                &mut out,
                                &mut line_has_code,
                                TokKind::Str,
                                &ident,
                                line,
                                col,
                            );
                            continue;
                        }
                        // Fell through: `r#ident` raw identifier.
                        read_ident_tail(&mut cur, &mut ident);
                        let stripped = ident.trim_start_matches("r#").to_string();
                        push_tok(
                            &mut out,
                            &mut line_has_code,
                            TokKind::Ident,
                            &stripped,
                            line,
                            col,
                        );
                        continue;
                    }
                    ("b", Some('\'')) => {
                        cur.bump();
                        lex_char_or_lifetime(&mut cur, &mut out, &mut line_has_code, line, col);
                        continue;
                    }
                    _ => {}
                }
                read_ident_tail(&mut cur, &mut ident);
                // Second chance for two-char prefixes (`br`).
                if ident == "br" && matches!(cur.peek(), Some('"') | Some('#')) {
                    let mut lit = ident;
                    if lex_raw_or_byte_tail(&mut cur, &mut lit) {
                        push_tok(&mut out, &mut line_has_code, TokKind::Str, &lit, line, col);
                        continue;
                    }
                    ident = lit;
                }
                push_tok(
                    &mut out,
                    &mut line_has_code,
                    TokKind::Ident,
                    &ident,
                    line,
                    col,
                );
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(c) = cur.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        num.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                push_tok(&mut out, &mut line_has_code, TokKind::Num, &num, line, col);
            }
            ':' => {
                cur.bump();
                if cur.peek() == Some(':') {
                    cur.bump();
                    push_tok(
                        &mut out,
                        &mut line_has_code,
                        TokKind::Punct,
                        "::",
                        line,
                        col,
                    );
                } else {
                    push_tok(&mut out, &mut line_has_code, TokKind::Punct, ":", line, col);
                }
            }
            c => {
                cur.bump();
                let mut s = String::new();
                s.push(c);
                push_tok(&mut out, &mut line_has_code, TokKind::Punct, &s, line, col);
            }
        }
    }

    // A comment "owns" its line when no significant token shares the line
    // (then an allow in it binds forward to the next code line).
    for c in &mut out.comments {
        c.own_line = line_has_code.binary_search(&c.line).is_err();
    }

    out
}

fn push_tok(
    out: &mut Lexed,
    line_has_code: &mut Vec<u32>,
    kind: TokKind,
    text: &str,
    line: u32,
    col: u32,
) {
    // Tokens arrive in non-decreasing line order, so the list stays sorted.
    if line_has_code.last() != Some(&line) {
        line_has_code.push(line);
    }
    out.toks.push(Tok {
        kind,
        text: text.to_string(),
        line,
        col,
    });
}

fn read_ident_tail(cur: &mut Cursor<'_>, ident: &mut String) {
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            ident.push(c);
            cur.bump();
        } else {
            break;
        }
    }
}

/// Lexes a `"…"` string (opening quote not yet consumed). Returns the raw
/// slice including quotes.
fn lex_string(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q);
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        match c {
            '\\' => {
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            '"' => break,
            _ => {}
        }
    }
    text
}

/// After consuming `r`/`b`/`br`, tries to lex the raw/byte-string tail.
/// Returns `false` if this is actually a raw identifier (`r#name`), leaving
/// the cursor just past the consumed `#`, with `text` holding `r#`.
fn lex_raw_or_byte_tail(cur: &mut Cursor<'_>, text: &mut String) -> bool {
    if cur.peek() == Some('"') {
        // Plain (non-raw) byte string for `b"`; raw with zero fences for `r"`.
        if text.ends_with('r') {
            return lex_raw_fenced(cur, text, 0);
        }
        text.push_str(&lex_string(cur));
        return true;
    }
    // One or more `#` fences — or a raw identifier.
    let mut fences = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        text.push('#');
        fences += 1;
        if fences == 1 && cur.peek().map(is_ident_start) == Some(true) {
            return false; // r#ident
        }
    }
    if cur.peek() == Some('"') {
        return lex_raw_fenced(cur, text, fences);
    }
    true // malformed; treat what we have as opaque
}

fn lex_raw_fenced(cur: &mut Cursor<'_>, text: &mut String, fences: usize) -> bool {
    if let Some(q) = cur.bump() {
        text.push(q); // opening quote
    }
    loop {
        match cur.bump() {
            Some('"') => {
                text.push('"');
                let mut seen = 0usize;
                while seen < fences && cur.peek() == Some('#') {
                    cur.bump();
                    text.push('#');
                    seen += 1;
                }
                if seen == fences {
                    return true;
                }
            }
            Some(c) => text.push(c),
            None => return true,
        }
    }
}

/// After a consumed `'`: either a char literal or a lifetime.
fn lex_char_or_lifetime(
    cur: &mut Cursor<'_>,
    out: &mut Lexed,
    line_has_code: &mut Vec<u32>,
    line: u32,
    col: u32,
) {
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: '\n', '\'', '\u{…}'.
            let mut text = String::from("'");
            cur.bump();
            text.push('\\');
            while let Some(c) = cur.bump() {
                text.push(c);
                if c == '\'' {
                    break;
                }
            }
            push_tok(out, line_has_code, TokKind::Char, &text, line, col);
        }
        Some(c) if is_ident_start(c) => {
            // 'a' is a char only if a quote directly follows one ident char;
            // otherwise it's a lifetime ('a, 'static, 'de).
            let mut body = String::new();
            body.push(c);
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
                let text = format!("'{body}'");
                push_tok(out, line_has_code, TokKind::Char, &text, line, col);
            } else {
                read_ident_tail(cur, &mut body);
                let text = format!("'{body}");
                push_tok(out, line_has_code, TokKind::Lifetime, &text, line, col);
            }
        }
        Some(_) => {
            // Non-ident single char: '(', '0' etc.
            let mut text = String::from("'");
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            if cur.peek() == Some('\'') {
                cur.bump();
                text.push('\'');
            }
            push_tok(out, line_has_code, TokKind::Char, &text, line, col);
        }
        None => {}
    }
}
