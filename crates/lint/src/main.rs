//! `coachlm-lint` CLI.
//!
//! ```text
//! coachlm-lint [--root DIR] [--format human|json] [--out FILE] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or IO error.
#![deny(unused_must_use)]

use coachlm_lint::diag;
use coachlm_lint::rules::RULES;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    json: bool,
    out: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: false,
        out: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--format" => match args.next().as_deref() {
                Some("human") => opts.json = false,
                Some("json") => opts.json = true,
                other => return Err(format!("--format must be human|json, got {other:?}")),
            },
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("--out needs a file")?));
            }
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                return Err(
                    "usage: coachlm-lint [--root DIR] [--format human|json] [--out FILE] [--list-rules]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("coachlm-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for (id, desc) in RULES {
            println!("{id}  {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let run = coachlm_lint::run_lint(&opts.root);
    for e in &run.io_errors {
        eprintln!("coachlm-lint: {e}");
    }

    let rendered = if opts.json {
        diag::render_json(&run.findings, run.files_checked)
    } else {
        diag::render_human(&run.findings, run.files_checked)
    };

    if let Some(out_path) = &opts.out {
        if let Some(parent) = out_path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("coachlm-lint: cannot create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(out_path, &rendered) {
            eprintln!("coachlm-lint: cannot write {}: {e}", out_path.display());
            return ExitCode::from(2);
        }
        // Keep the terminal summary even when writing to a file.
        if run.findings.is_empty() {
            println!(
                "coachlm-lint: clean — {} files, 0 violations ({})",
                run.files_checked,
                out_path.display()
            );
        } else {
            println!(
                "coachlm-lint: {} violation(s) in {} files ({})",
                run.findings.len(),
                run.files_checked,
                out_path.display()
            );
            print!("{}", diag::render_human(&run.findings, run.files_checked));
        }
    } else {
        print!("{rendered}");
    }

    if run.clean() {
        ExitCode::SUCCESS
    } else if run.findings.is_empty() {
        ExitCode::from(2) // io errors only
    } else {
        ExitCode::from(1)
    }
}
