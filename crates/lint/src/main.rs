//! `coachlm-lint` CLI — token rules + the `coachlm-analyze` passes.
//!
//! ```text
//! coachlm-lint [--root DIR] [--format human|json] [--out FILE]
//!              [--cache FILE | --no-cache] [--list-rules]
//! ```
//!
//! Exit codes:
//! * `0` — clean: no findings, tree fully parsed and read.
//! * `1` — findings (violations) only.
//! * `2` — usage error.
//! * `3` — parse or IO errors: the analysis could not see the whole
//!   tree, so "no findings" would be vacuous. Distinguished from `1` so
//!   CI and tooling can tell "the tree is dirty" from "the analyzer is
//!   blind".
#![deny(unused_must_use)]

use coachlm_lint::diag;
use coachlm_lint::rules::RULES;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    json: bool,
    out: Option<PathBuf>,
    cache: Option<PathBuf>,
    no_cache: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: false,
        out: None,
        cache: None,
        no_cache: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--format" => match args.next().as_deref() {
                Some("human") => opts.json = false,
                Some("json") => opts.json = true,
                other => return Err(format!("--format must be human|json, got {other:?}")),
            },
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("--out needs a file")?));
            }
            "--cache" => {
                opts.cache = Some(PathBuf::from(args.next().ok_or("--cache needs a file")?));
            }
            "--no-cache" => opts.no_cache = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                return Err(
                    "usage: coachlm-lint [--root DIR] [--format human|json] [--out FILE] \
                     [--cache FILE | --no-cache] [--list-rules]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.no_cache && opts.cache.is_some() {
        return Err("--cache and --no-cache are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("coachlm-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for (id, desc) in RULES {
            println!("{id}  {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let run = if opts.no_cache {
        coachlm_lint::run_lint_with(&opts.root, None)
    } else {
        match &opts.cache {
            Some(p) => coachlm_lint::run_lint_with(&opts.root, Some(p)),
            None => coachlm_lint::run_lint(&opts.root),
        }
    };
    for e in &run.io_errors {
        eprintln!("coachlm-lint: io: {e}");
    }
    for e in &run.parse_errors {
        eprintln!("coachlm-lint: parse: {e}");
    }
    eprintln!(
        "coachlm-lint: analyzed {} files ({} cached, {} fresh)",
        run.files_checked, run.cache_hits, run.cache_misses
    );

    let rendered = if opts.json {
        diag::render_json(&run.findings, run.files_checked)
    } else {
        diag::render_human(&run.findings, run.files_checked)
    };

    if let Some(out_path) = &opts.out {
        if let Some(parent) = out_path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("coachlm-lint: cannot create {}: {e}", parent.display());
                    return ExitCode::from(3);
                }
            }
        }
        if let Err(e) = std::fs::write(out_path, &rendered) {
            eprintln!("coachlm-lint: cannot write {}: {e}", out_path.display());
            return ExitCode::from(3);
        }
        // Keep the terminal summary even when writing to a file.
        if run.findings.is_empty() {
            println!(
                "coachlm-lint: clean — {} files, 0 violations ({})",
                run.files_checked,
                out_path.display()
            );
        } else {
            println!(
                "coachlm-lint: {} violation(s) in {} files ({})",
                run.findings.len(),
                run.files_checked,
                out_path.display()
            );
            print!("{}", diag::render_human(&run.findings, run.files_checked));
        }
    } else {
        print!("{rendered}");
    }

    if !run.io_errors.is_empty() || !run.parse_errors.is_empty() {
        ExitCode::from(3)
    } else if run.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
