//! Persistent per-file analysis cache, keyed by content hash.
//!
//! Lexing + parsing + rule matching dominate the analyzer's runtime and
//! depend only on (file path, file bytes, rule catalogue). CI runs the
//! pass on every commit over a tree where almost nothing changed, so the
//! cache stores each file's finished [`crate::FileAnalysis`] — findings
//! plus the parsed item summary — keyed by an FNV-1a hash of its content.
//! A hit skips the file entirely; the workspace analyses (call graph,
//! taint, fingerprint coverage) always re-run over the summaries, which
//! is cheap.
//!
//! The format is a versioned line-oriented text file. The header folds in
//! the rule catalogue, so editing any rule text or id invalidates every
//! entry; any parse hiccup while loading drops the whole cache (it is
//! only ever an accelerator — correctness never depends on it).
//! Writes are atomic (temp file + rename), so concurrent runs cannot
//! corrupt it.

use crate::parse::{Call, FieldItem, FileSummary, FnItem, SourceKind, TaintSource, TypeItem};
use crate::rules::{Finding, RULES};
use crate::FileAnalysis;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Bump when the cached representation (not the rules) changes shape.
const FORMAT: u32 = 1;

/// FNV-1a 64-bit: dependency-free, stable across platforms and runs.
pub fn fx64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of everything that, when changed, must invalidate every entry.
fn catalogue_hash() -> u64 {
    let mut s = format!("format={FORMAT};");
    for (id, desc) in RULES {
        s.push_str(id);
        s.push('=');
        s.push_str(desc);
        s.push(';');
    }
    fx64(s.as_bytes())
}

struct Entry {
    hash: u64,
    analysis: FileAnalysis,
}

/// The loaded cache plus hit/miss tallies for reporting.
pub struct FileCache {
    path: Option<PathBuf>,
    entries: BTreeMap<String, Entry>,
    /// Files served from cache this run.
    pub hits: usize,
    /// Files analyzed fresh this run.
    pub misses: usize,
}

impl FileCache {
    /// A disabled cache: everything misses, nothing is written.
    pub fn disabled() -> FileCache {
        FileCache {
            path: None,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Loads the cache at `path`; any read/parse problem yields an empty
    /// cache (the pass still runs, just cold).
    pub fn load(path: &Path) -> FileCache {
        let entries = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| parse_cache(&text))
            .unwrap_or_default();
        FileCache {
            path: Some(path.to_path_buf()),
            entries,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up one file by path + content hash, tallying hit/miss.
    pub fn get(&mut self, rel: &str, hash: u64) -> Option<FileAnalysis> {
        match self.entries.get(rel) {
            Some(e) if e.hash == hash => {
                self.hits += 1;
                Some(e.analysis.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records one freshly analyzed file.
    pub fn put(&mut self, rel: &str, hash: u64, analysis: FileAnalysis) {
        self.entries
            .insert(rel.to_string(), Entry { hash, analysis });
    }

    /// Writes the cache atomically. Failures are reported, never fatal.
    pub fn save(&self) -> Result<(), String> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        let mut text = String::new();
        text.push_str(&format!("coachlm-lint-cache {:016x}\n", catalogue_hash()));
        for (rel, e) in &self.entries {
            render_entry(&mut text, rel, e);
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        };
        write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("cannot write {}: {e}", path.display())
        })
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn opt(s: &Option<String>) -> &str {
    s.as_deref().unwrap_or("-")
}

fn render_entry(out: &mut String, rel: &str, e: &Entry) {
    out.push_str(&format!("F {:016x} {rel}\n", e.hash));
    for f in &e.analysis.findings {
        out.push_str(&format!(
            "d {} {} {} {}\n",
            f.rule,
            f.line,
            f.col,
            esc(&f.message)
        ));
    }
    for p in &e.analysis.summary.parse_errors {
        out.push_str(&format!("p {}\n", esc(p)));
    }
    for f in &e.analysis.summary.fns {
        out.push_str(&format!(
            "n {} {} {} {} {} {}\n",
            f.name,
            opt(&f.self_ty),
            opt(&f.trait_name),
            f.line,
            f.col,
            u8::from(f.is_test)
        ));
        for c in &f.calls {
            out.push_str(&format!(
                "c {} {} {} {}\n",
                c.name,
                opt(&c.qual),
                u8::from(c.method),
                c.line
            ));
        }
        for s in &f.sources {
            out.push_str(&format!("s {} {} {}\n", s.kind.id(), s.line, esc(&s.what)));
        }
        if !f.mentions.is_empty() {
            out.push_str(&format!("m {}\n", f.mentions.join(" ")));
        }
    }
    for t in &e.analysis.summary.types {
        out.push_str(&format!("t {} {}\n", t.name, t.line));
        for fd in &t.fields {
            out.push_str(&format!(
                "e {} {} {} {}\n",
                fd.name,
                fd.line,
                fd.col,
                u8::from(fd.allowed)
            ));
        }
    }
    out.push_str("E\n");
}

/// Strict parse of the whole cache; `None` (cold start) on any mismatch.
fn parse_cache(text: &str) -> Option<BTreeMap<String, Entry>> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let want = format!("coachlm-lint-cache {:016x}", catalogue_hash());
    if header != want {
        return None;
    }
    let mut entries = BTreeMap::new();
    let mut cur: Option<(String, Entry)> = None;
    let intern_rule = |r: &str| RULES.iter().find(|(id, _)| *id == r).map(|(id, _)| *id);
    let parse_opt = |s: &str| -> Option<String> { (s != "-").then(|| s.to_string()) };
    for line in lines {
        let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
        match tag {
            "F" => {
                if let Some((rel, e)) = cur.take() {
                    entries.insert(rel, e);
                }
                let (hash, rel) = rest.split_once(' ')?;
                cur = Some((
                    rel.to_string(),
                    Entry {
                        hash: u64::from_str_radix(hash, 16).ok()?,
                        analysis: FileAnalysis {
                            findings: Vec::new(),
                            summary: FileSummary {
                                rel: rel.to_string(),
                                ..FileSummary::default()
                            },
                        },
                    },
                ));
            }
            "d" => {
                let (_, e) = cur.as_mut()?;
                let mut it = rest.splitn(4, ' ');
                e.analysis.findings.push(Finding {
                    rule: intern_rule(it.next()?)?,
                    file: e.analysis.summary.rel.clone(),
                    line: it.next()?.parse().ok()?,
                    col: it.next()?.parse().ok()?,
                    message: unesc(it.next()?),
                });
            }
            "p" => {
                let (_, e) = cur.as_mut()?;
                e.analysis.summary.parse_errors.push(unesc(rest));
            }
            "n" => {
                let (_, e) = cur.as_mut()?;
                let mut it = rest.splitn(6, ' ');
                e.analysis.summary.fns.push(FnItem {
                    name: it.next()?.to_string(),
                    self_ty: parse_opt(it.next()?),
                    trait_name: parse_opt(it.next()?),
                    line: it.next()?.parse().ok()?,
                    col: it.next()?.parse().ok()?,
                    is_test: it.next()? == "1",
                    calls: Vec::new(),
                    sources: Vec::new(),
                    mentions: Vec::new(),
                });
            }
            "c" => {
                let (_, e) = cur.as_mut()?;
                let f = e.analysis.summary.fns.last_mut()?;
                let mut it = rest.splitn(4, ' ');
                f.calls.push(Call {
                    name: it.next()?.to_string(),
                    qual: parse_opt(it.next()?),
                    method: it.next()? == "1",
                    line: it.next()?.parse().ok()?,
                });
            }
            "s" => {
                let (_, e) = cur.as_mut()?;
                let f = e.analysis.summary.fns.last_mut()?;
                let mut it = rest.splitn(3, ' ');
                f.sources.push(TaintSource {
                    kind: SourceKind::from_id(it.next()?)?,
                    line: it.next()?.parse().ok()?,
                    what: unesc(it.next()?),
                });
            }
            "m" => {
                let (_, e) = cur.as_mut()?;
                let f = e.analysis.summary.fns.last_mut()?;
                f.mentions = rest.split(' ').map(str::to_string).collect();
            }
            "t" => {
                let (_, e) = cur.as_mut()?;
                let (name, line) = rest.split_once(' ')?;
                e.analysis.summary.types.push(TypeItem {
                    name: name.to_string(),
                    line: line.parse().ok()?,
                    fields: Vec::new(),
                });
            }
            "e" => {
                let (_, e) = cur.as_mut()?;
                let t = e.analysis.summary.types.last_mut()?;
                let mut it = rest.splitn(4, ' ');
                t.fields.push(FieldItem {
                    name: it.next()?.to_string(),
                    line: it.next()?.parse().ok()?,
                    col: it.next()?.parse().ok()?,
                    allowed: it.next()? == "1",
                });
            }
            "E" => {
                let (rel, e) = cur.take()?;
                entries.insert(rel, e);
            }
            _ => return None,
        }
    }
    Some(entries)
}
