//! Fingerprint-coverage check (rule `F1`).
//!
//! The write-ahead journal refuses to resume under a config that would
//! change outcomes — but only for config it can *see*: the header
//! fingerprint covers exactly what `fingerprint_into` hashes. A field
//! added to a policy struct without a matching hash line silently widens
//! the resume contract (journal v2's budget field nearly shipped that
//! way), and nothing dynamic can catch it because both runs agree.
//!
//! This check closes the loop statically: for every type that owns a
//! `fingerprint_into` implementation anywhere in the workspace, every
//! named field of that type must be *mentioned* in the hash body —
//! directly (`self.field`) or as a match binding (enum variants). A field
//! that is deliberately excluded (thread counts, queue depths — knobs
//! that never change results) must say so on its declaration line:
//! `// lint: allow(F1, reason = "…")`.

use crate::parse::FileSummary;
use crate::rules::Finding;

/// Runs the coverage check over all file summaries.
pub fn coverage_findings(summaries: &[FileSummary]) -> Vec<Finding> {
    // Every fingerprint_into impl, keyed by its self type.
    struct FpImpl<'a> {
        ty: &'a str,
        mentions: &'a [String],
    }
    let mut impls: Vec<FpImpl<'_>> = Vec::new();
    for s in summaries {
        for f in &s.fns {
            if f.name == "fingerprint_into" && !f.is_test {
                if let Some(ty) = &f.self_ty {
                    impls.push(FpImpl {
                        ty,
                        mentions: &f.mentions,
                    });
                }
            }
        }
    }

    let mut out = Vec::new();
    for s in summaries {
        for t in &s.types {
            let covering: Vec<&FpImpl<'_>> = impls.iter().filter(|i| i.ty == t.name).collect();
            if covering.is_empty() {
                continue; // not a fingerprinted type
            }
            for field in &t.fields {
                if field.allowed {
                    continue;
                }
                let hashed = covering
                    .iter()
                    .any(|i| i.mentions.iter().any(|m| m == &field.name));
                if !hashed {
                    out.push(Finding {
                        rule: "F1",
                        file: s.rel.clone(),
                        line: field.line,
                        col: field.col,
                        message: format!(
                            "field `{}` of fingerprinted type `{}` is not folded into \
                             `{}::fingerprint_into` — hash it, or justify the exclusion with \
                             `// lint: allow(F1, reason = \"…\")` on the field",
                            field.name, t.name, t.name
                        ),
                    });
                }
            }
        }
    }
    out
}
