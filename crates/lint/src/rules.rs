//! The rule catalogue and the token-level matchers behind it.
//!
//! Every rule works on the significant-token stream from [`crate::lexer`],
//! so pattern names inside string literals, comments, and raw strings can
//! never fire. Test scopes (from [`crate::scope`]) exempt the rules that
//! only guard production behaviour.

use crate::allow::Allows;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::scope::test_scopes;
use crate::walk::FileClass;

/// Rule identifiers. `A0` covers directive hygiene (malformed or unused
/// allows), the rest are the catalogue from the replication contract.
pub const RULES: &[(&str, &str)] = &[
    (
        "D1",
        "no wall-clock reads, filesystem timestamps, or real sleeps outside the runtime's simulated-time module",
    ),
    (
        "D2",
        "no ambient/OS randomness; RNG must flow from per-(stage, item) seeding",
    ),
    (
        "D3",
        "no iteration over HashMap/HashSet in production code without an order-insensitivity allow",
    ),
    (
        "P1",
        "no unwrap/expect/panic!/user-data indexing in production stage code",
    ),
    (
        "C1",
        "no raw thread spawns, atomics, channels, shard coordination, or process control (Command/Child/exit/kill) outside crates/runtime",
    ),
    (
        "T1",
        "no nondeterministic value may reach a production Stage::process path, journal frame, or digest/fingerprint — even through a chain of calls",
    ),
    (
        "F1",
        "every field of a fingerprinted policy struct must be folded into its fingerprint_into hash (or carry a justified allow)",
    ),
    ("A0", "lint directives must be well-formed and used"),
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D1`…`C1`, `A0`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human message.
    pub message: String,
}

/// Runs every rule over one lexed file. `allows` is consumed: used
/// directives are marked, and leftover/malformed ones become `A0` findings.
pub fn check_file(class: &FileClass, lexed: &Lexed, allows: &mut Allows) -> Vec<Finding> {
    let mut out = check_file_rules(class, lexed, allows);
    out.extend(directive_findings(class, allows));
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// The token-level rule pass alone: raw matches filtered through `allows`,
/// *without* the directive-hygiene (`A0`) finalization — the combined
/// analyzer pipeline runs the parser (which also consumes allows) in
/// between.
pub fn check_file_rules(class: &FileClass, lexed: &Lexed, allows: &mut Allows) -> Vec<Finding> {
    let toks = &lexed.toks;
    let in_test = test_scopes(toks);
    let mut raw = Vec::new();

    rule_d1(class, toks, &in_test, &mut raw);
    rule_d2(class, toks, &mut raw);
    rule_d3(class, toks, &in_test, &mut raw);
    rule_p1(class, toks, &in_test, &mut raw);
    rule_c1(class, toks, &in_test, &mut raw);

    // Apply allows; what survives is a violation.
    raw.into_iter()
        .filter(|f| !allows.permits(f.rule, f.line))
        .collect()
}

/// Directive hygiene (`A0`): malformed, unknown-rule, and unused allows.
/// Must run after every pass that consumes allows.
pub fn directive_findings(class: &FileClass, allows: &Allows) -> Vec<Finding> {
    let mut out = Vec::new();
    for bad in &allows.bad {
        out.push(Finding {
            rule: "A0",
            file: class.rel.clone(),
            line: bad.line,
            col: 1,
            message: format!("malformed lint directive: {}", bad.what),
        });
    }
    for a in &allows.allows {
        if !RULES.iter().any(|(id, _)| *id == a.rule) {
            out.push(Finding {
                rule: "A0",
                file: class.rel.clone(),
                line: a.line,
                col: 1,
                message: format!("allow names unknown rule `{}`", a.rule),
            });
        } else if !a.used {
            out.push(Finding {
                rule: "A0",
                file: class.rel.clone(),
                line: a.line,
                col: 1,
                message: format!(
                    "unused allow({}) — nothing on this line fires the rule",
                    a.rule
                ),
            });
        }
    }
    out
}

fn finding(rule: &'static str, class: &FileClass, t: &Tok, message: String) -> Finding {
    Finding {
        rule,
        file: class.rel.clone(),
        line: t.line,
        col: t.col,
        message,
    }
}

/// Is `toks[i]` an ident with this exact text?
fn is_ident(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn is_punct(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// Matches `recv . name ( … )`-style method calls: token at `i` is `.`,
/// `i+1` is the method ident, `i+2` is `(`.
fn is_method_call(toks: &[Tok], i: usize, name: &str) -> bool {
    is_punct(toks, i, ".") && is_ident(toks, i + 1, name) && is_punct(toks, i + 2, "(")
}

// ---------------------------------------------------------------------------
// D1: wall-clock / real sleep
// ---------------------------------------------------------------------------

fn rule_d1(class: &FileClass, toks: &[Tok], in_test: &[bool], out: &mut Vec<Finding>) {
    if class.simtime_module || class.test_file || class.example_file {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        // `Instant::now()` / `SystemTime::now()`
        if (t.text == "Instant" || t.text == "SystemTime")
            && is_punct(toks, i + 1, "::")
            && is_ident(toks, i + 2, "now")
        {
            out.push(finding(
                "D1",
                class,
                t,
                format!(
                    "`{}::now()` reads the wall clock; use the runtime's simulated time",
                    t.text
                ),
            ));
        }
        // Any other mention of `SystemTime` (imports, type positions,
        // `SystemTime::UNIX_EPOCH`): wall-clock timestamps must not leak
        // into journal records or anything else replayed on resume.
        else if t.text == "SystemTime" {
            out.push(finding(
                "D1",
                class,
                t,
                "`SystemTime` carries wall-clock timestamps; journaled state must stay \
                 replayable, use the runtime's simulated time"
                    .to_string(),
            ));
        }
        if t.text == "UNIX_EPOCH" {
            out.push(finding(
                "D1",
                class,
                t,
                "`UNIX_EPOCH` anchors wall-clock timestamps; journaled state must stay \
                 replayable, use the runtime's simulated time"
                    .to_string(),
            ));
        }
        // `thread::sleep(..)` / `sleep(..)` via `std::thread::sleep` path
        if t.text == "thread" && is_punct(toks, i + 1, "::") && is_ident(toks, i + 2, "sleep") {
            out.push(finding(
                "D1",
                class,
                t,
                "`thread::sleep` blocks on real time; model latency via the fault plan".to_string(),
            ));
        }
    }
    // Filesystem timestamp reads: `meta.modified()` / `.created()` /
    // `.accessed()` are wall-clock values by another door — a journal that
    // recorded them could never replay bit-identically.
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        for m in ["modified", "created", "accessed"] {
            if is_method_call(toks, i, m) {
                out.push(finding(
                    "D1",
                    class,
                    &toks[i + 1],
                    format!(
                        "`.{m}()` reads a filesystem timestamp (wall clock); journaled state \
                         must stay replayable"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D2: ambient randomness (applies everywhere, tests included)
// ---------------------------------------------------------------------------

fn rule_d2(class: &FileClass, toks: &[Tok], out: &mut Vec<Finding>) {
    const BANNED: &[(&str, &str)] = &[
        ("thread_rng", "ambient thread-local RNG breaks replication"),
        ("from_entropy", "OS-entropy seeding breaks replication"),
        ("OsRng", "OS randomness breaks replication"),
        ("getrandom", "OS randomness breaks replication"),
        ("random_seed", "nondeterministic seeding breaks replication"),
    ];
    for t in toks {
        if t.kind != TokKind::Ident {
            continue;
        }
        for (name, why) in BANNED {
            if t.text == *name {
                out.push(finding(
                    "D2",
                    class,
                    t,
                    format!("`{name}`: {why}; derive RNG from per-(stage, item) seeds"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D3: HashMap/HashSet iteration order
// ---------------------------------------------------------------------------

const MAP_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// One detected hash-map/set iteration: the token index of the receiver
/// name, the name itself, and how it is iterated (`.iter()` … or a plain
/// `for` loop). Shared between rule D3 and the interprocedural taint
/// analysis, which seeds map-order nondeterminism at exactly these sites.
pub(crate) struct MapIterSite {
    /// Index of the receiver-name token in the significant-token stream.
    pub tok: usize,
    /// The iterated variable/field name.
    pub name: String,
    /// `"iter"`, `"keys"`, …, or `"for"` for a bare for-loop.
    pub how: String,
}

fn rule_d3(class: &FileClass, toks: &[Tok], in_test: &[bool], out: &mut Vec<Finding>) {
    if class.test_file || class.example_file {
        return;
    }
    for site in map_iteration_sites(toks, in_test) {
        let t = &toks[site.tok];
        let what = if site.how == "for" {
            format!(
                "for-loop over hash map/set `{}` has nondeterministic order",
                site.name
            )
        } else {
            format!(
                "`.{}()` over hash map/set `{}` has nondeterministic order",
                site.how, site.name
            )
        };
        out.push(finding(
            "D3",
            class,
            t,
            format!("{what}; collect-and-sort or add an order-insensitivity allow"),
        ));
    }
}

/// Detects every hash-map/set iteration site in production scopes.
pub(crate) fn map_iteration_sites(toks: &[Tok], in_test: &[bool]) -> Vec<MapIterSite> {
    let mut out = Vec::new();
    // Pass 1: names bound to hash-map/set types. Heuristic, intentionally
    // over-approximate within the file: `name : HashMap<…>` (fields, params,
    // lets), `let name = HashMap::new()` (incl. default/with_capacity*), and
    // `type Alias = HashMap<…>` then treating the alias as a map type.
    let mut aliases: Vec<String> = Vec::new();
    let is_map_type = |text: &str, aliases: &[String]| {
        MAP_TYPES.contains(&text) || aliases.iter().any(|a| a == text)
    };
    for i in 0..toks.len() {
        if is_ident(toks, i, "type")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && is_punct(toks, i + 2, "=")
        {
            // type Alias = <ty> — map-ness decided by any map type ident
            // before the terminating `;`.
            let mut j = i + 3;
            while j < toks.len() && !is_punct(toks, j, ";") {
                if toks[j].kind == TokKind::Ident && MAP_TYPES.contains(&toks[j].text.as_str()) {
                    aliases.push(toks[i + 1].text.clone());
                    break;
                }
                j += 1;
            }
        }
    }
    let mut tracked: Vec<String> = Vec::new();
    for (i, (t, &test)) in toks.iter().zip(in_test).enumerate() {
        // A binding made in test code must not taint a same-named
        // production variable (test scopes are exempt from D3 anyway).
        if test || t.kind != TokKind::Ident {
            continue;
        }
        // `name : [&mut]* Ty<…>` where Ty is a map type.
        if is_punct(toks, i + 1, ":") {
            let mut j = i + 2;
            while j < toks.len() && (is_punct(toks, j, "&") || is_ident(toks, j, "mut")) {
                j += 1;
            }
            if toks
                .get(j)
                .is_some_and(|ty| ty.kind == TokKind::Ident && is_map_type(&ty.text, &aliases))
            {
                tracked.push(t.text.clone());
            }
        }
        // `let name = Ty::new()` / `Ty::default()` / `Ty::with_capacity*`.
        if is_ident(toks, i, "let") {
            let mut j = i + 1;
            if is_ident(toks, j, "mut") {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if is_punct(toks, j + 1, "=")
                && toks
                    .get(j + 2)
                    .is_some_and(|ty| ty.kind == TokKind::Ident && is_map_type(&ty.text, &aliases))
                && is_punct(toks, j + 3, "::")
            {
                tracked.push(name.text.clone());
            }
        }
    }
    tracked.sort();
    tracked.dedup();

    // Pass 2: flag iteration over tracked names (or direct map-type
    // receivers) in production scopes.
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        // `recv.iter()` where recv is a tracked name or `self.field` with a
        // tracked field name.
        if t.kind == TokKind::Ident
            && tracked.iter().any(|n| n == &t.text)
            && ITER_METHODS.iter().any(|m| is_method_call(toks, i + 1, m))
        {
            out.push(MapIterSite {
                tok: i,
                name: t.text.clone(),
                how: toks[i + 2].text.clone(),
            });
        }
        // `for pat in [&[mut]] name` / `for (k, v) in &name`.
        if is_ident(toks, i, "for") {
            // find the matching `in` at paren depth 0
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" => break,
                    "in" if depth == 0 && toks[j].kind == TokKind::Ident => break,
                    _ => {}
                }
                j += 1;
            }
            if !is_ident(toks, j, "in") {
                continue;
            }
            let mut k = j + 1;
            while k < toks.len() && (is_punct(toks, k, "&") || is_ident(toks, k, "mut")) {
                k += 1;
            }
            if let Some(name) = toks.get(k).filter(|t| t.kind == TokKind::Ident) {
                // plain `for x in map {` — next token must open the body (or
                // a `.` chain already covered by the method matcher above).
                if tracked.iter().any(|n| n == &name.text) && is_punct(toks, k + 1, "{") {
                    out.push(MapIterSite {
                        tok: k,
                        name: name.text.clone(),
                        how: "for".to_string(),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// P1: panic paths in production code
// ---------------------------------------------------------------------------

fn rule_p1(class: &FileClass, toks: &[Tok], in_test: &[bool], out: &mut Vec<Finding>) {
    if class.test_file || class.example_file || class.bench_crate {
        return;
    }
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(`
        if t.kind == TokKind::Punct && t.text == "." {
            if is_ident(toks, i + 1, "unwrap") && is_punct(toks, i + 2, "(") {
                out.push(finding(
                    "P1",
                    class,
                    &toks[i + 1],
                    "`.unwrap()` can panic in a production chain; handle or quarantine the error"
                        .to_string(),
                ));
            }
            if is_ident(toks, i + 1, "expect") && is_punct(toks, i + 2, "(") {
                out.push(finding(
                    "P1",
                    class,
                    &toks[i + 1],
                    "`.expect(..)` can panic in a production chain; handle or quarantine the error"
                        .to_string(),
                ));
            }
        }
        // `panic!(` / `unreachable!(` / `todo!(` / `unimplemented!(`
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && is_punct(toks, i + 1, "!")
            && (is_punct(toks, i + 2, "(") || is_punct(toks, i + 2, "["))
        {
            out.push(finding(
                "P1",
                class,
                t,
                format!(
                    "`{}!` aborts a production chain; return a StageOutcome instead",
                    t.text
                ),
            ));
        }
        // Indexing into user-carried text: `.instruction[` / `.response[`
        // (the two free-text fields a dataset record carries; anything else
        // indexed is internal state with checked invariants).
        if t.kind == TokKind::Punct
            && t.text == "."
            && toks
                .get(i + 1)
                .is_some_and(|f| matches!(f.text.as_str(), "instruction" | "response"))
            && is_punct(toks, i + 2, "[")
        {
            out.push(finding(
                "P1",
                class,
                &toks[i + 1],
                format!(
                    "indexing `[..]` into user-carried `.{}` can panic on adversarial input; \
                     use `.get(..)`",
                    toks[i + 1].text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// C1: raw concurrency primitives
// ---------------------------------------------------------------------------

fn rule_c1(class: &FileClass, toks: &[Tok], in_test: &[bool], out: &mut Vec<Finding>) {
    if class.runtime_crate || class.test_file || class.example_file {
        return;
    }
    const ATOMICS: &[&str] = &[
        "AtomicUsize",
        "AtomicU64",
        "AtomicU32",
        "AtomicBool",
        "AtomicIsize",
        "AtomicI64",
        "AtomicI32",
        "AtomicPtr",
    ];
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "thread"
            && is_punct(toks, i + 1, "::")
            && (is_ident(toks, i + 2, "spawn") || is_ident(toks, i + 2, "scope"))
        {
            out.push(finding(
                "C1",
                class,
                t,
                format!(
                    "`thread::{}` outside crates/runtime; parallelism must go through the executor",
                    toks[i + 2].text
                ),
            ));
        }
        if ATOMICS.contains(&t.text.as_str()) {
            out.push(finding(
                "C1",
                class,
                t,
                format!(
                    "raw atomic `{}` outside crates/runtime; shared state must go through the executor",
                    t.text
                ),
            ));
        }
        // Channel / queue primitives: the streaming core's bounded queues
        // live in crates/runtime; hand-rolled channels elsewhere would
        // bypass its backpressure and determinism contract.
        if t.text == "mpsc" && is_punct(toks, i + 1, "::") {
            out.push(finding(
                "C1",
                class,
                t,
                "`mpsc` channel outside crates/runtime; item flow must go through \
                 the streaming executor's queues"
                    .to_string(),
            ));
        }
        if matches!(t.text.as_str(), "Condvar" | "sync_channel") {
            out.push(finding(
                "C1",
                class,
                t,
                format!(
                    "queue primitive `{}` outside crates/runtime; blocking coordination \
                     must go through the streaming executor",
                    t.text
                ),
            ));
        }
        // Shard-driver coordination primitives (PR 7): the sharded driver
        // joins worker shards and merges their outputs inside
        // crates/runtime; hand-rolled shard coordination elsewhere would
        // bypass its deterministic partition/merge contract.
        if matches!(t.text.as_str(), "Barrier" | "RwLock" | "JoinHandle") {
            out.push(finding(
                "C1",
                class,
                t,
                format!(
                    "shard coordination primitive `{}` outside crates/runtime; \
                     fan-out must go through the sharded driver",
                    t.text
                ),
            ));
        }
        if t.text == "thread"
            && is_punct(toks, i + 1, "::")
            && (is_ident(toks, i + 2, "park") || is_ident(toks, i + 2, "park_timeout"))
        {
            out.push(finding(
                "C1",
                class,
                t,
                format!(
                    "`thread::{}` outside crates/runtime; worker coordination must go \
                     through the executor",
                    toks[i + 2].text
                ),
            ));
        }
        // Process control (PR 10): worker processes are spawned, fed,
        // killed, and reaped only by the supervised driver in
        // crates/runtime — ad-hoc process management elsewhere would
        // bypass its crash-containment, restart, and journal-resume
        // contract (and `exit`/`abort` would skip supervised teardown).
        if t.text == "process"
            && is_punct(toks, i + 1, "::")
            && toks
                .get(i + 2)
                .is_some_and(|n| matches!(n.text.as_str(), "Command" | "Child" | "exit" | "abort"))
        {
            out.push(finding(
                "C1",
                class,
                t,
                format!(
                    "`process::{}` outside crates/runtime; process control must go \
                     through the supervised driver",
                    toks[i + 2].text
                ),
            ));
        }
        if t.text == "Command" && is_punct(toks, i + 1, "::") && is_ident(toks, i + 2, "new") {
            out.push(finding(
                "C1",
                class,
                t,
                "`Command::new` spawns a process outside crates/runtime; worker processes \
                 must go through the supervised driver"
                    .to_string(),
            ));
        }
    }
    // Signal sending: `child.kill()` (or any `.kill()`) delivers a process
    // signal — supervision owns the only kill switch, so chaos schedules
    // and restarts stay deterministic and accounted.
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if is_method_call(toks, i, "kill") {
            out.push(finding(
                "C1",
                class,
                &toks[i + 1],
                "`.kill()` sends a process signal outside crates/runtime; worker kills \
                 must go through the supervised driver"
                    .to_string(),
            ));
        }
    }
}
