//! The allow-comment grammar: `// lint: allow(RULE, reason = "...")`.
//!
//! An allow suppresses one rule on one line. A trailing comment binds to
//! its own line; a comment that owns its line binds forward to the next
//! code line (so the annotation can sit above a long expression). The
//! `reason` string is mandatory — a reasonless or otherwise malformed
//! directive is itself reported as a violation (`A0`), so suppressions
//! can never silently rot.

use crate::lexer::Comment;

/// One parsed, well-formed allow directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule id the directive names (e.g. `D3`). Not yet validated against
    /// the catalogue — unknown ids are diagnosed by the engine.
    pub rule: String,
    /// The mandatory human reason.
    pub reason: String,
    /// Line the allow applies to (after own-line forward binding).
    pub line: u32,
    /// Whether any rule consulted this allow; unused allows are diagnosed.
    pub used: bool,
}

/// A directive that looked like an allow but failed to parse.
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// Line of the comment.
    pub line: u32,
    /// What was wrong with it.
    pub what: String,
}

/// Result of scanning one file's comments for directives.
#[derive(Debug, Default)]
pub struct Allows {
    /// Well-formed directives.
    pub allows: Vec<Allow>,
    /// Malformed directives (reported as violations).
    pub bad: Vec<BadAllow>,
}

impl Allows {
    /// Returns `true` (and marks the directive used) when `rule` is allowed
    /// on `line`.
    pub fn permits(&mut self, rule: &str, line: u32) -> bool {
        for a in &mut self.allows {
            if a.line == line && a.rule == rule {
                a.used = true;
                return true;
            }
        }
        false
    }
}

/// Scans comments for `lint:` directives. `next_code_line` maps a comment's
/// own line to the line the directive should bind to when the comment owns
/// its line (the next line carrying a significant token).
pub fn collect(comments: &[Comment], next_code_line: impl Fn(u32) -> u32) -> Allows {
    let mut out = Allows::default();
    for c in comments {
        let body = c.text.trim();
        let Some(rest) = strip_marker(body) else {
            continue;
        };
        let bind = if c.own_line {
            next_code_line(c.line)
        } else {
            c.line
        };
        match parse_directive(rest) {
            Ok((rule, reason)) => out.allows.push(Allow {
                rule,
                reason,
                line: bind,
                used: false,
            }),
            Err(what) => out.bad.push(BadAllow { line: c.line, what }),
        }
    }
    out
}

/// Strips the `lint:` marker, returning the directive tail, or `None` when
/// the comment is not a directive at all.
fn strip_marker(body: &str) -> Option<&str> {
    let rest = body.strip_prefix("lint:")?;
    Some(rest.trim_start())
}

/// Parses `allow(RULE, reason = "...")`. Returns `(rule, reason)` or a
/// description of the malformation.
fn parse_directive(s: &str) -> Result<(String, String), String> {
    let Some(args) = s.strip_prefix("allow") else {
        return Err(format!(
            "unknown lint directive `{s}`; expected `allow(...)`"
        ));
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = args.rfind(')') else {
        return Err("unclosed `allow(` directive".to_string());
    };
    let inner = &args[..close];
    let Some((rule, rest)) = inner.split_once(',') else {
        return Err("missing `, reason = \"...\"` — a reason is mandatory".to_string());
    };
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        return Err(format!("bad rule id `{rule}`"));
    }
    let rest = rest.trim();
    let Some(value) = rest.strip_prefix("reason") else {
        return Err("expected `reason = \"...\"`".to_string());
    };
    let value = value.trim_start();
    let Some(value) = value.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let value = value.trim();
    let Some(value) = value.strip_prefix('"') else {
        return Err("reason must be a quoted string".to_string());
    };
    let Some(end) = value.find('"') else {
        return Err("unterminated reason string".to_string());
    };
    let reason = &value[..end];
    if reason.trim().is_empty() {
        return Err("reason string must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}
