//! Output post-processing, reproducing §III-B1.
//!
//! The paper applies "automatic post-processing on the outputs of CoachLM
//! using regular expressions to remove invalid characters and repeated
//! strings that were occasionally produced", and replaces ~1.3 % of outputs
//! that are "not valid instruction pairs" with the originals. This module
//! implements those checks without a regex engine: invalid-character
//! stripping, repeated-substring collapsing (degenerate-decoding artefacts),
//! and structural validity checks for a generated instruction pair.

/// Characters considered invalid in a revised instruction pair: C0 control
/// characters other than `\n` and `\t`, plus the Unicode replacement char.
#[inline]
fn is_invalid_char(c: char) -> bool {
    (c.is_control() && c != '\n' && c != '\t') || c == '\u{FFFD}'
}

/// Removes invalid characters. Returns the input unchanged (borrowed
/// semantics preserved via `String` only when needed is overkill here — the
/// cleaning pass runs once per dataset, clarity wins).
pub fn strip_invalid_chars(s: &str) -> String {
    s.chars().filter(|&c| !is_invalid_char(c)).collect()
}

/// Collapses a trailing "stutter": if the text ends with `k >= min_repeats`
/// consecutive copies of the same substring (a classic degenerate-decoding
/// artefact), keep a single copy.
///
/// The repeated unit is searched from longest (half the text) down to
/// `min_unit` characters, on char boundaries.
pub fn collapse_trailing_repeats(s: &str, min_unit: usize, min_repeats: usize) -> String {
    let bytes = s.as_bytes();
    let n = bytes.len();
    let mut unit_len = n / 2;
    while unit_len >= min_unit.max(1) {
        if !s.is_char_boundary(n - unit_len) || !s.is_char_boundary(n - 2 * unit_len) {
            unit_len -= 1;
            continue;
        }
        let unit = &bytes[n - unit_len..];
        // Count how many consecutive copies of `unit` end the string.
        let mut reps = 1usize;
        while reps * unit_len + unit_len <= n
            && &bytes[n - (reps + 1) * unit_len..n - reps * unit_len] == unit
        {
            reps += 1;
        }
        if reps >= min_repeats {
            let keep = n - (reps - 1) * unit_len;
            return s[..keep].to_string();
        }
        unit_len -= 1;
    }
    s.to_string()
}

/// Collapses immediate word-level repetitions beyond `max_run` copies
/// ("very very very very good" → "very very good" with `max_run = 2`).
pub fn collapse_word_stutter(s: &str, max_run: usize) -> String {
    let max_run = max_run.max(1);
    let mut out: Vec<&str> = Vec::new();
    let mut run = 0usize;
    for w in s.split_whitespace() {
        if out.last().is_some_and(|&last| last == w) {
            run += 1;
        } else {
            run = 1;
        }
        if run <= max_run {
            out.push(w);
        }
    }
    out.join(" ")
}

/// Result of validating a generated instruction pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validity {
    /// The output parses as a usable instruction pair.
    Valid,
    /// The instruction side is empty after cleaning.
    EmptyInstruction,
    /// The response side is empty after cleaning.
    EmptyResponse,
    /// The output is dominated by repeated content even after collapsing.
    Degenerate,
    /// Prompt-template markers leaked into the output.
    TemplateLeak,
}

/// Template markers whose presence in a *revised* pair means the model
/// echoed its prompt scaffold instead of producing a revision.
const TEMPLATE_MARKERS: &[&str] = &[
    "### Instruction:",
    "### Response:",
    "[INSTRUCTION]",
    "[RESPONSE]",
    "Improve the following instruction",
];

/// Validates a cleaned (instruction, response) pair per §III-B1; invalid
/// pairs are replaced with their originals by the caller.
pub fn validate_pair(instruction: &str, response: &str) -> Validity {
    let instr = instruction.trim();
    let resp = response.trim();
    if instr.is_empty() {
        return Validity::EmptyInstruction;
    }
    if resp.is_empty() {
        return Validity::EmptyResponse;
    }
    for marker in TEMPLATE_MARKERS {
        if instr.contains(marker) || resp.contains(marker) {
            return Validity::TemplateLeak;
        }
    }
    if repetition_ratio(resp) > 0.6 {
        return Validity::Degenerate;
    }
    Validity::Valid
}

/// Fraction of words that immediately repeat their predecessor or belong to
/// the single most common word when it dominates; a cheap degeneracy signal.
pub fn repetition_ratio(s: &str) -> f64 {
    let words: Vec<&str> = s.split_whitespace().collect();
    if words.len() < 4 {
        return 0.0;
    }
    let mut repeats = 0usize;
    for w in words.windows(2) {
        if w[0] == w[1] {
            repeats += 1;
        }
    }
    repeats as f64 / (words.len() - 1) as f64
}

/// The full §III-B1 cleaning pass: strip invalid chars, collapse trailing
/// repeats and word stutter.
pub fn clean_output(s: &str) -> String {
    let stripped = strip_invalid_chars(s);
    let collapsed = collapse_trailing_repeats(&stripped, 3, 3);
    collapse_word_stutter(&collapsed, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_control_chars() {
        assert_eq!(strip_invalid_chars("a\u{0}b\u{7}c"), "abc");
        assert_eq!(
            strip_invalid_chars("keep\nnewlines\tand tabs"),
            "keep\nnewlines\tand tabs"
        );
        assert_eq!(strip_invalid_chars("bad\u{FFFD}char"), "badchar");
    }

    #[test]
    fn collapses_trailing_repeats() {
        assert_eq!(
            collapse_trailing_repeats("the answer is 42.42.42.42.", 3, 3),
            "the answer is 42."
        );
        // Fewer than min_repeats copies: untouched.
        assert_eq!(collapse_trailing_repeats("ha ha", 2, 3), "ha ha");
    }

    #[test]
    fn trailing_repeat_requires_unit_length() {
        // Single-char repeats below min_unit are left alone ("hmmm").
        assert_eq!(collapse_trailing_repeats("hmmm", 3, 3), "hmmm");
    }

    #[test]
    fn word_stutter() {
        assert_eq!(
            collapse_word_stutter("it is very very very very good", 2),
            "it is very very good"
        );
        assert_eq!(
            collapse_word_stutter("no repeats here", 2),
            "no repeats here"
        );
    }

    #[test]
    fn validity_checks() {
        assert_eq!(validate_pair("Do X", "Result Y"), Validity::Valid);
        assert_eq!(validate_pair("  ", "Result"), Validity::EmptyInstruction);
        assert_eq!(validate_pair("Do X", " "), Validity::EmptyResponse);
        assert_eq!(
            validate_pair("Do X", "### Response: leaked"),
            Validity::TemplateLeak
        );
    }

    #[test]
    fn degenerate_output_detected() {
        let resp = "spam ".repeat(40);
        assert_eq!(validate_pair("Do X", &resp), Validity::Degenerate);
    }

    #[test]
    fn repetition_ratio_bounds() {
        assert_eq!(repetition_ratio("a b c"), 0.0); // too short
        assert!(repetition_ratio("x x x x x x") > 0.9);
        let r = repetition_ratio("mostly unique words in this sentence");
        assert_eq!(r, 0.0);
    }

    #[test]
    fn clean_output_pipeline() {
        let noisy = "Answer: 7.\u{0} Indeed indeed indeed the end.the end.the end.";
        let cleaned = clean_output(noisy);
        assert!(!cleaned.contains('\u{0}'));
        assert!(!cleaned.contains("indeed indeed indeed"));
        assert_eq!(cleaned.matches("the end.").count(), 1);
    }
}
