//! String interning.
//!
//! Word-level edit distance and alignment over 52k instruction pairs hash
//! the same words millions of times. Interning maps each distinct word to a
//! dense `u32` symbol once, so the hot inner loops compare integers.

use crate::fxhash::FxHashMap;

/// A dense symbol handle produced by an [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// An append-only string interner.
///
/// Symbols are dense indices into an internal table, valid for the lifetime
/// of the interner.
#[derive(Debug, Default)]
pub struct Interner {
    map: FxHashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with capacity for `n` distinct strings.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            strings: Vec::with_capacity(n),
        }
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a symbol without interning. Returns `None` if unseen.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Interns every token of `tokens` in order.
    pub fn intern_seq<'a, I: IntoIterator<Item = &'a str>>(&mut self, tokens: I) -> Vec<Sym> {
        tokens.into_iter().map(|t| self.intern(t)).collect()
    }

    /// Interns the word sequence of `s` (words + punctuation tokens).
    pub fn intern_words(&mut self, s: &str) -> Vec<Sym> {
        let toks = crate::token::tokenize(s);
        toks.iter().map(|t| self.intern(t.text(s))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("alpha");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("gamma").is_none());
        i.intern("gamma");
        assert!(i.get("gamma").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense() {
        let mut i = Interner::new();
        for (n, w) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(i.intern(w), Sym(n as u32));
        }
    }

    #[test]
    fn intern_words_uses_tokeniser() {
        let mut i = Interner::new();
        let syms = i.intern_words("Hi, hi!");
        // "Hi" and "hi" are distinct (case-sensitive by design; callers
        // normalise first when they want case-insensitive comparison).
        assert_eq!(syms.len(), 4);
        assert_ne!(syms[0], syms[2]);
        assert_eq!(i.resolve(syms[1]), ",");
    }
}
