//! Shared lexicons for defect injection, detection, and repair.
//!
//! The reproduction keeps one canonical vocabulary of textual-quality
//! phenomena so that three independent subsystems stay consistent *without
//! sharing hidden state*:
//!
//! * `coachlm-data` **injects** defects by planting these surface forms;
//! * `coachlm-judge` **detects** them by analysing text for the same forms;
//! * `coachlm-lm` **repairs** them, with a backbone-dependent coverage of
//!   each list (stronger backbones know a longer prefix).
//!
//! Every list is ordered from most to least common, so "coverage = prefix"
//! mirrors how real models learn frequent phenomena first.

/// Misspelling/typo confusion pairs `(wrong, right)`, most common first.
pub const TYPO_PAIRS: &[(&str, &str)] = &[
    ("teh", "the"),
    ("recieve", "receive"),
    ("definately", "definitely"),
    ("seperate", "separate"),
    ("occured", "occurred"),
    ("untill", "until"),
    ("wich", "which"),
    ("becuase", "because"),
    ("thier", "their"),
    ("alot", "a lot"),
    ("truely", "truly"),
    ("begining", "beginning"),
    ("beleive", "believe"),
    ("acheive", "achieve"),
    ("accross", "across"),
    ("foriegn", "foreign"),
    ("goverment", "government"),
    ("enviroment", "environment"),
    ("neccessary", "necessary"),
    ("occassion", "occasion"),
    ("publically", "publicly"),
    ("arguement", "argument"),
    ("concious", "conscious"),
    ("embarass", "embarrass"),
    ("existance", "existence"),
    ("happend", "happened"),
    ("independant", "independent"),
    ("knowlege", "knowledge"),
    ("liason", "liaison"),
    ("maintainance", "maintenance"),
    ("momento", "memento"),
    ("noticable", "noticeable"),
    ("perseverence", "perseverance"),
    ("posession", "possession"),
    ("priviledge", "privilege"),
    ("recomend", "recommend"),
    ("refered", "referred"),
    ("relevent", "relevant"),
    ("succesful", "successful"),
    ("tommorow", "tomorrow"),
];

/// Multi-word grammar confusion pairs `(wrong, right)`.
pub const GRAMMAR_PAIRS: &[(&str, &str)] = &[
    ("could of", "could have"),
    ("should of", "should have"),
    ("would of", "would have"),
    ("less people", "fewer people"),
    ("more better", "better"),
    ("most biggest", "biggest"),
    ("doesn't knows", "doesn't know"),
    ("he don't", "he doesn't"),
    ("they was", "they were"),
    ("it have", "it has"),
    ("is consist of", "consists of"),
    ("for to make", "to make"),
];

/// Phrases that make an instruction vague or ambiguous (Feasibility).
pub const VAGUE_PHRASES: &[&str] = &[
    "do something about it",
    "make it better somehow",
    "handle the thing mentioned",
    "fix whatever needs fixing",
    "improve this or that part",
    "address the aforementioned stuff",
];

/// Phrases that make an instruction infeasible for a text model
/// (Feasibility — logical errors or requests beyond a model's ability).
pub const INFEASIBLE_PHRASES: &[&str] = &[
    "using exactly zero words",
    "and deliver it to my house",
    "before I finish typing this",
    "by physically mailing a copy",
    "while remaining completely silent",
    "and phone me with the result",
];

/// Markers of rich instruction context (Contextualization): scenarios,
/// roles, examples, explicit requirements, chain-of-thought requests.
pub const CONTEXT_MARKERS: &[&str] = &[
    "for example",
    "you are",
    "step by step",
    "in the style of",
    "requirements:",
    "such as",
    "at least",
    "formatted as",
    "imagine",
    "given that",
];

/// Markers of reasoning/explanation in a response (Comprehensiveness,
/// Richness).
pub const REASONING_MARKERS: &[&str] = &[
    "because",
    "therefore",
    "first",
    "second",
    "finally",
    "this means",
    "for example",
    "in other words",
    "step by step",
    "as a result",
    "in summary",
    "note that",
];

/// Markers of a humanised, empathetic tone (Humanization).
pub const WARM_MARKERS: &[&str] = &[
    "happy to help",
    "great question",
    "hope this helps",
    "let me know",
    "feel free",
    "thank you",
    "of course",
    "understandable",
];

/// Openers that read as machine-generated boilerplate (anti-Humanization).
pub const MACHINE_TONE_MARKERS: &[&str] = &[
    "as an ai language model",
    "as a large language model",
    "i am just a machine",
    "output generated successfully",
];

/// Phrases marking unsafe content (Safety red line). Deliberately abstract
/// markers — the reproduction needs detectable tokens, not actual harm.
pub const UNSAFE_MARKERS: &[&str] = &[
    "without consulting a doctor",
    "guaranteed to double your investment",
    "here is their home address",
    "how to avoid paying the fine illegally",
    "untraceable and totally legal, trust me",
    "you should insult them back",
];

/// Placeholder markers indicating the instruction's key input is missing or
/// invalid (Table III "Invalid Input").
pub const INVALID_INPUT_MARKERS: &[&str] = &[
    "[link to an article]",
    "[attached file]",
    "[see above]",
    "<insert text here>",
    "(reference missing)",
];

/// Markers of unsupported multimodal content (Table III "Multi-modal").
pub const MULTIMODAL_MARKERS: &[&str] = &[
    "(photo of",
    "(image of",
    "(audio clip",
    "(video of",
    "in the picture",
    "in this image",
];

/// Markers of overly professional domains (Table III "Beyond Expertise").
pub const EXPERTISE_MARKERS: &[&str] = &[
    "chords for",
    "key signature of",
    "cite the statute",
    "icd-10 code",
    "structural load calculation",
    "pharmacokinetic profile",
];

/// Markers of massive creative rewriting workload (Table III
/// "Massive Workload").
pub const WORKLOAD_MARKERS: &[&str] = &[
    "rewrite the entire lyrics",
    "create a haiku poem from the given lyrics",
    "translate the whole novel",
    "rewrite every verse",
];

/// Small fact table `(subject, correct, wrong)`: canonical statements the
/// generator can corrupt and the judge/repairer can check.
pub const FACT_TABLE: &[(&str, &str, &str)] = &[
    ("the capital of France is", "Paris", "Berlin"),
    (
        "water boils at",
        "100 degrees Celsius",
        "50 degrees Celsius",
    ),
    ("the Earth orbits the", "Sun", "Moon"),
    ("2 plus 2 equals", "4", "5"),
    ("the largest planet is", "Jupiter", "Mercury"),
    ("light travels faster than", "sound", "nothing at all"),
    ("the human heart has", "four chambers", "seven chambers"),
    ("DNA is shaped like a", "double helix", "perfect cube"),
    ("the Pacific is the largest", "ocean", "desert"),
    ("a triangle has", "three sides", "five sides"),
    (
        "the freezing point of water is",
        "0 degrees Celsius",
        "40 degrees Celsius",
    ),
    ("photosynthesis produces", "oxygen", "pure carbon"),
];

/// Common English stopwords, used for content-word extraction when judging
/// response relevance and choosing revision topics.
pub const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "the",
    "and",
    "or",
    "but",
    "if",
    "then",
    "else",
    "of",
    "in",
    "on",
    "at",
    "to",
    "for",
    "from",
    "with",
    "by",
    "about",
    "as",
    "into",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "am",
    "do",
    "does",
    "did",
    "have",
    "has",
    "had",
    "will",
    "would",
    "can",
    "could",
    "should",
    "may",
    "might",
    "must",
    "shall",
    "it",
    "its",
    "this",
    "that",
    "these",
    "those",
    "i",
    "you",
    "he",
    "she",
    "we",
    "they",
    "them",
    "his",
    "her",
    "their",
    "your",
    "my",
    "our",
    "me",
    "him",
    "us",
    "what",
    "which",
    "who",
    "whom",
    "whose",
    "when",
    "where",
    "why",
    "how",
    "not",
    "no",
    "nor",
    "so",
    "too",
    "very",
    "just",
    "also",
    "than",
    "there",
    "here",
    "all",
    "each",
    "any",
    "some",
    "such",
    "more",
    "most",
    "other",
    "please",
    "write",
    "given",
    "following",
    "make",
    "give",
    "list",
    "describe",
    "explain",
    "create",
    "generate",
    // Generic task verbs and meta-words common in instructions; they name
    // the *task*, not the topic, so relevance must not hinge on them.
    "suggest",
    "recommend",
    "brainstorm",
    "compose",
    "draft",
    "complete",
    "correct",
    "classify",
    "decide",
    "summarize",
    "paraphrase",
    "translate",
    "extract",
    "rank",
    "convert",
    "compare",
    "define",
    "find",
    "provide",
    "involving",
    "ideas",
    "ways",
    "things",
    "examples",
    "example",
    "one",
    "two",
    "three",
    "four",
    "five",
    "short",
    "long",
    "brief",
    "briefly",
    "sentence",
    "sentences",
    "passage",
    "paragraph",
    "article",
    "text",
    "title",
    "dialogue",
    "keywords",
    "facts",
    "key",
    "main",
    "simple",
    "everyday",
    "clearly",
    "using",
];

/// Returns `true` if `word` (case-folded) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    let folded = crate::normalize::fold_case(word);
    STOPWORDS.contains(&folded.as_str())
}

/// Extracts up to `max` content words (non-stopword words of length ≥ 3)
/// from `text`, in order of first appearance, deduplicated case-folded.
/// Known misspellings are normalised to their corrections first, so a
/// typo'd stopword ("teh") is still skipped and topics never carry typos.
pub fn content_words(text: &str, max: usize) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for tok in crate::token::tokenize(text) {
        if out.len() >= max {
            break;
        }
        if tok.kind == crate::token::TokenKind::Word {
            let folded = crate::normalize::fold_case(tok.text(text));
            let w = typo_correction(&folded, TYPO_PAIRS.len()).unwrap_or(&folded);
            if w.chars().count() >= 3 && !is_stopword(w) {
                let fixed = w.to_string();
                if seen.insert(fixed.clone()) {
                    out.push(fixed);
                }
            }
        }
    }
    out
}

/// Shared-content-word counts between `a`'s leading content words and `b`:
/// `(hits, total)`. Only the first eight content words of `a` count — they
/// carry the task topic; appended requirements/context must not dilute
/// relevance.
pub fn content_overlap_counts(a: &str, b: &str) -> (usize, usize) {
    let wa = content_words(a, 8);
    let wb: std::collections::HashSet<String> = content_words(b, 256).into_iter().collect();
    let hits = wa.iter().filter(|w| wb.contains(*w)).count();
    (hits, wa.len())
}

/// Lexical overlap in [0, 1]: fraction of `a`'s leading content words that
/// also appear in `b`. The relevance signal used by the criteria engine.
pub fn content_overlap(a: &str, b: &str) -> f64 {
    let (hits, total) = content_overlap_counts(a, b);
    if total == 0 {
        return 1.0; // nothing to be relevant to
    }
    hits as f64 / total as f64
}

/// Whether `response` is off-topic for `instruction`: *no* shared content
/// word at all (and, for longer instructions, overlap below `floor`). A
/// single genuine topic hit — e.g. a one-word topic like "gravity" — is
/// enough to count as on-topic; a long instruction's generic scaffold words
/// must not swamp it.
pub fn is_off_topic(instruction: &str, response: &str, floor: f64) -> bool {
    let (hits, total) = content_overlap_counts(instruction, response);
    if total == 0 {
        return false;
    }
    hits == 0 && ((hits as f64) / (total as f64)) < floor
}

/// Looks up the correction for a typo, if it is in the first
/// `coverage_len` entries of [`TYPO_PAIRS`].
pub fn typo_correction(word: &str, coverage_len: usize) -> Option<&'static str> {
    TYPO_PAIRS
        .iter()
        .take(coverage_len)
        .find(|(wrong, _)| *wrong == word)
        .map(|(_, right)| *right)
}

/// Case-insensitive containment test for any marker in `markers`.
pub fn contains_marker(text: &str, markers: &[&str]) -> bool {
    let folded = crate::normalize::fold_case(text);
    markers
        .iter()
        .any(|m| folded.contains(&crate::normalize::fold_case(m)))
}

/// Returns the first matching marker (case-insensitive), if any.
pub fn find_marker<'m>(text: &str, markers: &'m [&'m str]) -> Option<&'m str> {
    let folded = crate::normalize::fold_case(text);
    markers
        .iter()
        .find(|m| folded.contains(&crate::normalize::fold_case(m)))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicons_have_no_duplicate_wrong_forms() {
        let mut seen = std::collections::HashSet::new();
        for (wrong, _) in TYPO_PAIRS {
            assert!(seen.insert(*wrong), "duplicate typo {wrong}");
        }
    }

    #[test]
    fn typo_pairs_are_actual_corrections() {
        for (wrong, right) in TYPO_PAIRS {
            assert_ne!(wrong, right);
            assert!(!wrong.is_empty() && !right.is_empty());
        }
    }

    #[test]
    fn typo_correction_respects_coverage() {
        assert_eq!(typo_correction("teh", TYPO_PAIRS.len()), Some("the"));
        assert_eq!(typo_correction("teh", 1), Some("the"));
        assert_eq!(typo_correction("tommorow", 5), None); // beyond coverage
        assert_eq!(typo_correction("correct", TYPO_PAIRS.len()), None);
    }

    #[test]
    fn marker_matching_is_case_insensitive() {
        assert!(contains_marker(
            "As an AI language model, I cannot",
            MACHINE_TONE_MARKERS
        ));
        assert!(!contains_marker(
            "a helpful human reply",
            MACHINE_TONE_MARKERS
        ));
        assert_eq!(
            find_marker("For Example, consider this", CONTEXT_MARKERS),
            Some("for example")
        );
    }

    #[test]
    fn fact_table_entries_are_contradictory() {
        for (subject, correct, wrong) in FACT_TABLE {
            assert_ne!(correct, wrong, "fact {subject} has equal variants");
        }
    }

    #[test]
    fn content_words_skip_stopwords_and_short_words() {
        let cw = content_words("Explain the theory of general relativity to me", 10);
        assert_eq!(cw, vec!["theory", "general", "relativity"]);
    }

    #[test]
    fn content_words_dedupe_and_cap() {
        let cw = content_words("gravity gravity Gravity waves waves fields", 2);
        assert_eq!(cw, vec!["gravity", "waves"]);
    }

    #[test]
    fn overlap_detects_relevance() {
        let instr = "Describe the water cycle";
        let relevant = "The water cycle moves water through evaporation and rain.";
        let irrelevant = "Bananas are yellow fruits rich in potassium.";
        assert!(content_overlap(instr, relevant) > 0.5);
        assert!(content_overlap(instr, irrelevant) < 0.2);
    }

    #[test]
    fn overlap_with_empty_query_is_one() {
        assert_eq!(content_overlap("the of and", "anything"), 1.0);
    }

    #[test]
    fn marker_lists_are_nonempty() {
        for list in [
            VAGUE_PHRASES,
            INFEASIBLE_PHRASES,
            CONTEXT_MARKERS,
            REASONING_MARKERS,
            WARM_MARKERS,
            MACHINE_TONE_MARKERS,
            UNSAFE_MARKERS,
            INVALID_INPUT_MARKERS,
            MULTIMODAL_MARKERS,
            EXPERTISE_MARKERS,
            WORKLOAD_MARKERS,
        ] {
            assert!(!list.is_empty());
        }
    }
}
