//! A fast, non-cryptographic hasher (the FxHash algorithm used inside rustc).
//!
//! The standard library's SipHash is DoS-resistant but slow for the short
//! keys (interned word ids, small strings) this workspace hashes constantly.
//! Following the Rust performance guide we use the Fx algorithm for all
//! internal maps; none of them are exposed to untrusted keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hashing state: a single 64-bit accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // chunks_exact(8) guarantees 8-byte slices; copy into a fixed
            // buffer instead of a fallible try_into.
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Hashes a sequence of byte fields into one 64-bit content fingerprint.
///
/// Each field is prefixed with its length, so field boundaries are part of
/// the fingerprint: `["ab", "c"]` and `["a", "bc"]` hash differently. This
/// is the keying primitive for content-addressed lookups (e.g. the
/// revision cache in `coachlm-runtime`), where "same bytes, same fields"
/// must map to the same key on every run and host.
pub fn fingerprint_fields(fields: &[&[u8]]) -> u64 {
    let mut h = FxHasher::default();
    for field in fields {
        h.write_u64(field.len() as u64);
        h.write(field);
    }
    h.finish()
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"coachlm");
        b.write(b"coachlm");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"instruction");
        b.write(b"response");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn chunked_writes_match_single_write() {
        // Hashing is sensitive to write boundaries in general, but our map
        // usage always hashes a value in one `write` call per field; this
        // test pins the behaviour for the common &str case.
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a long key");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a long key");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn usable_in_hashmap() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m["a"] + m["b"], 3);
    }

    #[test]
    fn empty_input_hash_is_zero_state() {
        let h = FxHasher::default();
        assert_eq!(h.finish(), 0);
    }

    #[test]
    fn fingerprint_fields_respects_boundaries() {
        assert_eq!(
            fingerprint_fields(&[b"ab", b"c"]),
            fingerprint_fields(&[b"ab", b"c"])
        );
        assert_ne!(
            fingerprint_fields(&[b"ab", b"c"]),
            fingerprint_fields(&[b"a", b"bc"])
        );
        assert_ne!(
            fingerprint_fields(&[b"ab"]),
            fingerprint_fields(&[b"ab", b""])
        );
    }
}
