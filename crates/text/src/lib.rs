//! # coachlm-text
//!
//! Text-processing substrate for the CoachLM reproduction.
//!
//! The CoachLM pipeline (Liu et al., ICDE 2024) leans on a handful of
//! classical text algorithms: word- and character-level Levenshtein edit
//! distance (used for the human-input-ratio α selection, §II-F2, and the
//! dataset statistics of Table VII), token alignment between an original and
//! a revised instruction pair (used by our coach-tuning rule extraction),
//! n-gram extraction (used by the language-model substrate), and the
//! regular-expression-style post-processing the paper applies to raw CoachLM
//! outputs (§III-B1).
//!
//! This crate provides all of those as small, allocation-conscious modules:
//!
//! * [`token`] — word/sentence tokenisation.
//! * [`intern`] — a string interner so word-level algorithms run on `u32`s.
//! * [`editdist`] — Levenshtein distances: two-row DP, banded, and Myers'
//!   bit-parallel algorithm, over bytes, chars, or interned words.
//! * [`diff`] — LCS-based edit scripts and word alignments.
//! * [`ngram`] — n-gram iteration and counting.
//! * [`normalize`] — whitespace/punctuation/case normalisation.
//! * [`clean`] — the paper's post-processing: invalid-character stripping and
//!   repeated-string collapsing.
//! * [`fxhash`] — a fast, non-cryptographic hasher for internal maps.

#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod clean;
pub mod diff;
pub mod editdist;
pub mod fxhash;
pub mod intern;
pub mod lexicon;
pub mod ngram;
pub mod normalize;
pub mod token;

pub use diff::{diff_tokens, EditOp, EditScript};
pub use editdist::{char_edit_distance, edit_distance, word_edit_distance};
pub use intern::Interner;
pub use token::{sentences, words, Token, TokenKind};
