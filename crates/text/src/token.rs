//! Word- and sentence-level tokenisation.
//!
//! The paper measures instruction pairs at the *word* level (Table VII
//! reports word counts and word-level edit distances), so the tokeniser here
//! is the single definition of "word" used across the workspace: maximal runs
//! of alphanumeric characters (plus in-word apostrophes/hyphens), with
//! punctuation emitted as separate single tokens. Whitespace is never a
//! token.

use std::ops::Range;

/// The class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A word: letters/digits with optional internal `'` or `-`.
    Word,
    /// A number: digits with optional internal `.` or `,` (e.g. `3.14`).
    Number,
    /// A single punctuation character.
    Punct,
}

/// A token: its text slice boundaries within the source and its kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Byte range of the token in the source string.
    pub span: Range<usize>,
    /// Classification of the token.
    pub kind: TokenKind,
}

impl Token {
    /// The token's text within `source`.
    ///
    /// `source` must be the string this token was produced from.
    #[inline]
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.span.clone()]
    }
}

/// Returns `true` if `c` continues a word that has already started.
#[inline]
fn is_word_continue(c: char, prev_alnum: bool, next: Option<char>) -> bool {
    if c.is_alphanumeric() {
        return true;
    }
    // Apostrophes and hyphens stay inside a word only when flanked by
    // alphanumerics: "don't", "state-of-the-art".
    (c == '\'' || c == '-') && prev_alnum && next.is_some_and(|n| n.is_alphanumeric())
}

/// Tokenise `s` into [`Token`]s.
pub fn tokenize(s: &str) -> Vec<Token> {
    let mut out = Vec::with_capacity(s.len() / 5 + 4);
    let mut chars = s.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        if c.is_whitespace() {
            continue;
        }
        if c.is_alphanumeric() {
            let starts_numeric = c.is_ascii_digit();
            let mut all_numeric = starts_numeric;
            let mut end = start + c.len_utf8();
            let mut prev_alnum = true;
            while let Some(&(i, nc)) = chars.peek() {
                let next = s[i + nc.len_utf8()..].chars().next();
                let numeric_sep = all_numeric
                    && (nc == '.' || nc == ',')
                    && next.is_some_and(|n| n.is_ascii_digit());
                if is_word_continue(nc, prev_alnum, next) || numeric_sep {
                    prev_alnum = nc.is_alphanumeric();
                    if !nc.is_ascii_digit() && !numeric_sep {
                        all_numeric = false;
                    }
                    end = i + nc.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(Token {
                span: start..end,
                kind: if all_numeric {
                    TokenKind::Number
                } else {
                    TokenKind::Word
                },
            });
        } else {
            out.push(Token {
                span: start..start + c.len_utf8(),
                kind: TokenKind::Punct,
            });
        }
    }
    out
}

/// The word tokens of `s` as string slices (punctuation included as tokens).
///
/// This is the canonical "word sequence" used for word-level edit distance
/// (Table VII) and for coach-tuning alignment.
pub fn words(s: &str) -> Vec<&str> {
    tokenize(s).iter().map(|t| t.text(s)).collect()
}

/// Number of word-or-punct tokens in `s`; the paper's "average length" metric
/// in Table VII counts words, so punctuation is excluded here.
pub fn word_count(s: &str) -> usize {
    tokenize(s)
        .iter()
        .filter(|t| t.kind != TokenKind::Punct)
        .count()
}

/// A memo of tokenisations keyed by exact text, so a pair that flows through
/// several pipeline stages is tokenised once per stage chain rather than once
/// per stage. Shared results are handed out as `Arc`s; hit/miss counters feed
/// the executor's per-stage reports.
#[derive(Debug, Default)]
pub struct TokenCache {
    entries: crate::fxhash::FxHashMap<String, std::sync::Arc<Vec<Token>>>,
    hits: u64,
    misses: u64,
}

impl TokenCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tokenisation of `s`, computed on first sight and shared after.
    pub fn tokens(&mut self, s: &str) -> std::sync::Arc<Vec<Token>> {
        if let Some(hit) = self.entries.get(s) {
            self.hits += 1;
            return std::sync::Arc::clone(hit);
        }
        self.misses += 1;
        let toks = std::sync::Arc::new(tokenize(s));
        self.entries
            .insert(s.to_string(), std::sync::Arc::clone(&toks));
        toks
    }

    /// Cached [`word_count`]: non-punct tokens of `s`.
    pub fn word_count(&mut self, s: &str) -> usize {
        self.tokens(s)
            .iter()
            .filter(|t| t.kind != TokenKind::Punct)
            .count()
    }

    /// Cached [`words`]: the token texts of `s` (punctuation included).
    pub fn words<'a>(&mut self, s: &'a str) -> Vec<&'a str> {
        let toks = self.tokens(s);
        toks.iter().map(|t| t.text(s)).collect()
    }

    /// `(hits, misses)` since construction or the last [`clear`](Self::clear).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct texts currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries and zeroes the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Absorbs `other` into `self`: entries union (an entry for a text
    /// both caches tokenised is kept from whichever cache got there
    /// first — both hold the identical tokenisation, so the choice is
    /// unobservable) and hit/miss counters sum. Commutative up to which
    /// identical `Arc` survives, so merging per-worker caches in any
    /// order yields the same observable cache — the same shape as
    /// `Quarantine::merge` in the runtime.
    pub fn merge(&mut self, other: TokenCache) {
        for (text, toks) in other.entries {
            self.entries.entry(text).or_insert(toks);
        }
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Split `s` into sentences on `.`, `!`, `?` and newlines, keeping the
/// terminator with the sentence. Abbreviation handling is intentionally
/// minimal: a period followed by a lowercase letter does not split.
pub fn sentences(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let is_term = b == b'.' || b == b'!' || b == b'?' || b == b'\n';
        if is_term {
            // Look ahead: skip the split when the next non-space char is
            // lowercase (likely an abbreviation like "e.g. apples").
            let rest = s[i + 1..].trim_start();
            let next_lower = rest.chars().next().is_some_and(|c| c.is_lowercase());
            if !(b == b'.' && next_lower) {
                let seg = s[start..=i].trim();
                if !seg.is_empty() {
                    out.push(seg);
                }
                start = i + 1;
            }
        }
        i += 1;
    }
    let tail = s[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<(&str, TokenKind)> {
        tokenize(s).iter().map(|t| (t.text(s), t.kind)).collect()
    }

    #[test]
    fn splits_words_and_punct() {
        assert_eq!(
            toks("Hello, world!"),
            vec![
                ("Hello", TokenKind::Word),
                (",", TokenKind::Punct),
                ("world", TokenKind::Word),
                ("!", TokenKind::Punct),
            ]
        );
    }

    #[test]
    fn keeps_contractions_and_hyphens() {
        assert_eq!(
            toks("don't state-of-the-art"),
            vec![
                ("don't", TokenKind::Word),
                ("state-of-the-art", TokenKind::Word),
            ]
        );
    }

    #[test]
    fn trailing_apostrophe_is_punct() {
        assert_eq!(
            toks("dogs' toys"),
            vec![
                ("dogs", TokenKind::Word),
                ("'", TokenKind::Punct),
                ("toys", TokenKind::Word),
            ]
        );
    }

    #[test]
    fn numbers_with_decimal_points() {
        assert_eq!(
            toks("pi is 3.14, not 3."),
            vec![
                ("pi", TokenKind::Word),
                ("is", TokenKind::Word),
                ("3.14", TokenKind::Number),
                (",", TokenKind::Punct),
                ("not", TokenKind::Word),
                ("3", TokenKind::Number),
                (".", TokenKind::Punct),
            ]
        );
    }

    #[test]
    fn unicode_words() {
        assert_eq!(
            toks("Café costs 5€"),
            vec![
                ("Café", TokenKind::Word),
                ("costs", TokenKind::Word),
                ("5", TokenKind::Number),
                ("€", TokenKind::Punct),
            ]
        );
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t\n ").is_empty());
    }

    #[test]
    fn word_count_excludes_punct() {
        assert_eq!(word_count("Hello, world! 42 times."), 4);
    }

    #[test]
    fn sentence_splitting_basic() {
        assert_eq!(
            sentences("First one. Second one! Third?"),
            vec!["First one.", "Second one!", "Third?"]
        );
    }

    #[test]
    fn sentence_splitting_resists_abbreviations() {
        let got = sentences("Fruits, e.g. apples, are good. Eat them.");
        assert_eq!(got, vec!["Fruits, e.g. apples, are good.", "Eat them."]);
    }

    #[test]
    fn sentences_on_newlines() {
        assert_eq!(
            sentences("line one\nline two"),
            vec!["line one", "line two"]
        );
    }

    #[test]
    fn token_cache_reuses_and_counts() {
        let mut cache = TokenCache::new();
        assert!(cache.is_empty());
        let a = cache.tokens("Hello, world!");
        let b = cache.tokens("Hello, world!");
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.word_count("Hello, world!"), 2);
        assert_eq!(
            cache.word_count("Hello, world!"),
            word_count("Hello, world!")
        );
        assert_eq!(cache.words("don't stop"), words("don't stop"));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert_eq!(cache.stats(), (0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn token_cache_merge_is_order_independent() {
        let texts = ["alpha beta", "gamma, delta!", "alpha beta", "epsilon"];
        let mut a = TokenCache::new();
        let mut b = TokenCache::new();
        for t in &texts[..2] {
            a.tokens(t);
        }
        for t in &texts[2..] {
            b.tokens(t);
        }
        let merge = |first: &TokenCache, second: &TokenCache| {
            let mut out = TokenCache::new();
            for (k, v) in &first.entries {
                out.entries.insert(k.clone(), std::sync::Arc::clone(v));
            }
            out.hits = first.hits;
            out.misses = first.misses;
            let mut rhs = TokenCache::new();
            for (k, v) in &second.entries {
                rhs.entries.insert(k.clone(), std::sync::Arc::clone(v));
            }
            rhs.hits = second.hits;
            rhs.misses = second.misses;
            out.merge(rhs);
            out
        };
        let ab = merge(&a, &b);
        let ba = merge(&b, &a);
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.len(), ba.len());
        assert_eq!(ab.stats(), ba.stats());
        // Merged entries serve lookups as hits with identical contents.
        let mut ab = ab;
        let mut ba = ba;
        for t in texts {
            assert_eq!(*ab.tokens(t), *ba.tokens(t));
        }
        assert_eq!(ab.stats(), ba.stats());
    }

    #[test]
    fn words_round_trip_alignment() {
        let s = "Rewrite the sentence; keep tone.";
        let ws = words(s);
        assert_eq!(
            ws,
            vec!["Rewrite", "the", "sentence", ";", "keep", "tone", "."]
        );
    }
}
