//! Levenshtein edit distance.
//!
//! CoachLM uses edit distance in two load-bearing places:
//!
//! * **α-selection (§II-F2):** the expert-revision pairs `(x, x_r)` are
//!   ranked by edit distance and the top-α fraction forms the coach-tuning
//!   set `C_α`.
//! * **Dataset statistics (Table VII):** the revised ALPACA52K dataset is
//!   characterised by average *word-level* edit distance.
//!
//! Four implementations are provided and cross-checked by tests:
//!
//! * [`edit_distance`] — classic two-row dynamic programming over any
//!   `PartialEq` items, with common prefix/suffix trimming. O(nm) time,
//!   O(min(n,m)) space.
//! * [`edit_distance_bounded`] — banded DP that answers "distance, if ≤ k"
//!   in O(k·min(n,m)) time; used by hot loops that only need a threshold.
//! * [`myers`] — Myers' 1999 bit-parallel algorithm over bytes, processing
//!   64 DP columns per machine word; the fast path for character-level
//!   distance on ASCII text.
//! * [`SymMyers`] — the same bit-parallel recurrence lifted from bytes to
//!   interned word symbols ([`Sym`]): the per-pattern `peq` table is a small
//!   hash map over the pattern's distinct symbols instead of a 256-entry
//!   array, with Hyyrö's blocked variant for patterns longer than 64 words.
//!   All scratch state is reused across calls, so dataset-scale ranking
//!   ([`WordDistance`]) performs zero heap allocations per pair after
//!   warm-up. This is the word-level hot path for α-selection and the
//!   Table VII statistics.
//!
//! [`Sym`]: crate::intern::Sym

use crate::fxhash::FxHashMap;
use crate::intern::Sym;
use std::collections::hash_map::Entry;

/// Levenshtein distance between two slices (unit costs).
///
/// Works over any `PartialEq` item type: bytes, chars, or interned word
/// symbols. Trims common prefixes/suffixes first, then runs two-row DP over
/// the remainder.
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let (a, b) = trim_common(a, b);
    // Ensure `b` is the shorter side so the DP rows are minimal.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = vec![0; b.len() + 1];
    for (i, ai) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ai != bj);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Levenshtein distance if it is `<= bound`, else `None`.
///
/// Runs a banded DP with band half-width `bound`; cost O(bound·min(n,m)).
pub fn edit_distance_bounded<T: PartialEq>(a: &[T], b: &[T], bound: usize) -> Option<usize> {
    let (a, b) = trim_common(a, b);
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let (n, m) = (a.len(), b.len());
    if n - m > bound {
        return None;
    }
    if m == 0 {
        return Some(n);
    }
    const INF: usize = usize::MAX / 2;
    // Row over the shorter sequence `b`; band of columns [lo, hi] per row i.
    let mut prev = vec![INF; m + 1];
    let mut curr = vec![INF; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(bound.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(bound).max(1);
        let hi = (i + bound).min(m);
        if lo > hi {
            return None;
        }
        curr[lo - 1] = if lo == 1 { i } else { INF };
        let mut row_min = curr[lo - 1];
        for j in lo..=hi {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let del = prev[j].saturating_add(1);
            let ins = curr[j - 1].saturating_add(1);
            curr[j] = sub.min(del).min(ins);
            row_min = row_min.min(curr[j]);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
        // Invalidate stale cells outside the next band.
        if hi < m {
            prev[hi + 1] = INF;
        }
    }
    let d = prev[m];
    (d <= bound).then_some(d)
}

/// Strips common prefix and suffix, returning the differing cores.
#[inline]
fn trim_common<'x, T: PartialEq>(a: &'x [T], b: &'x [T]) -> (&'x [T], &'x [T]) {
    let pre = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[pre..], &b[pre..]);
    let suf = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&a[..a.len() - suf], &b[..b.len() - suf])
}

/// Myers' bit-parallel Levenshtein over byte strings.
pub mod myers {
    /// Bit-parallel distance for patterns up to 64 bytes; falls back to the
    /// blocked variant for longer inputs.
    pub fn distance(a: &[u8], b: &[u8]) -> usize {
        // Use the shorter string as the "pattern" whose DP column is packed
        // into machine words.
        let (p, t) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        if p.is_empty() {
            return t.len();
        }
        if p.len() <= 64 {
            distance_64(p, t)
        } else {
            distance_blocked(p, t)
        }
    }

    fn distance_64(p: &[u8], t: &[u8]) -> usize {
        debug_assert!(!p.is_empty() && p.len() <= 64);
        let m = p.len();
        let mut peq = [0u64; 256];
        for (i, &c) in p.iter().enumerate() {
            peq[c as usize] |= 1 << i;
        }
        let mut pv: u64 = !0;
        let mut mv: u64 = 0;
        let mut score = m;
        let high = 1u64 << (m - 1);
        for &c in t {
            let eq = peq[c as usize];
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & high != 0 {
                score += 1;
            }
            if mh & high != 0 {
                score -= 1;
            }
            let ph = (ph << 1) | 1;
            pv = (mh << 1) | !(xv | ph);
            mv = ph & xv;
        }
        score
    }

    /// Blocked Myers for patterns longer than 64 bytes (Hyyrö's variant).
    fn distance_blocked(p: &[u8], t: &[u8]) -> usize {
        let m = p.len();
        let w = 64usize;
        let blocks = m.div_ceil(w);
        // Per-block pattern-match bitmasks.
        let mut peq = vec![[0u64; 256]; blocks];
        for (i, &c) in p.iter().enumerate() {
            peq[i / w][c as usize] |= 1 << (i % w);
        }
        let mut pv = vec![!0u64; blocks];
        let mut mv = vec![0u64; blocks];
        let mut score = m;
        let last = blocks - 1;
        let last_high = 1u64 << ((m - 1) % w);
        for &c in t {
            let mut carry_ph = 1u64; // horizontal +1 carries in from column boundary
            let mut carry_mh = 0u64;
            for bidx in 0..blocks {
                let eq = peq[bidx][c as usize];
                let pvb = pv[bidx];
                let mvb = mv[bidx];
                let xv = eq | mvb;
                let eqc = eq | carry_mh;
                let xh = (((eqc & pvb).wrapping_add(pvb)) ^ pvb) | eqc;
                let mut ph = mvb | !(xh | pvb);
                let mut mh = pvb & xh;
                if bidx == last {
                    if ph & last_high != 0 {
                        score += 1;
                    }
                    if mh & last_high != 0 {
                        score -= 1;
                    }
                }
                let ph_out = ph >> 63;
                let mh_out = mh >> 63;
                ph = (ph << 1) | carry_ph;
                mh = (mh << 1) | carry_mh;
                pv[bidx] = mh | !(xv | ph);
                mv[bidx] = ph & xv;
                carry_ph = ph_out;
                carry_mh = mh_out;
            }
        }
        score
    }
}

/// Myers' bit-parallel Levenshtein lifted to interned word symbols.
///
/// The byte version's 256-entry `peq` array becomes a per-pattern map from
/// each distinct [`Sym`] in the pattern to a dense row of match-mask words
/// (one `u64` per 64 pattern positions). Patterns up to 64 words run the
/// single-word recurrence; longer patterns run Hyyrö's blocked variant.
///
/// Every buffer (the `peq` rows, the symbol→row index, the blocked `pv`/`mv`
/// columns) lives in the struct and is reused across calls, so after a few
/// warm-up calls the computation performs **zero heap allocations per
/// query** — the property dataset-scale ranking relies on.
#[derive(Debug, Default)]
pub struct SymMyers {
    /// Distinct pattern symbol → row index into `peq`.
    index: FxHashMap<Sym, u32>,
    /// Flattened match masks: row `r` occupies `peq[r*blocks..(r+1)*blocks]`.
    peq: Vec<u64>,
    /// Blocked-variant vertical-positive column.
    pv: Vec<u64>,
    /// Blocked-variant vertical-negative column.
    mv: Vec<u64>,
}

impl SymMyers {
    /// Creates an empty scratch; buffers grow on first use and are retained.
    pub fn new() -> Self {
        Self::default()
    }

    /// Levenshtein distance between two symbol sequences.
    pub fn distance(&mut self, a: &[Sym], b: &[Sym]) -> usize {
        let (a, b) = trim_common(a, b);
        // The shorter side is the "pattern" packed into machine words.
        let (p, t) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        if p.is_empty() {
            return t.len();
        }
        let m = p.len();
        let blocks = m.div_ceil(64);
        self.index.clear();
        self.peq.clear();
        for (i, &s) in p.iter().enumerate() {
            let row = match self.index.entry(s) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(v) => {
                    let r = (self.peq.len() / blocks) as u32;
                    v.insert(r);
                    self.peq.resize(self.peq.len() + blocks, 0);
                    r
                }
            };
            self.peq[row as usize * blocks + i / 64] |= 1 << (i % 64);
        }
        if blocks == 1 {
            self.distance_64(m, t)
        } else {
            self.distance_blocked(m, blocks, t)
        }
    }

    fn distance_64(&self, m: usize, t: &[Sym]) -> usize {
        debug_assert!((1..=64).contains(&m));
        let mut pv: u64 = !0;
        let mut mv: u64 = 0;
        let mut score = m;
        let high = 1u64 << (m - 1);
        for c in t {
            let eq = self.index.get(c).map_or(0, |&r| self.peq[r as usize]);
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & high != 0 {
                score += 1;
            }
            if mh & high != 0 {
                score -= 1;
            }
            let ph = (ph << 1) | 1;
            pv = (mh << 1) | !(xv | ph);
            mv = ph & xv;
        }
        score
    }

    fn distance_blocked(&mut self, m: usize, blocks: usize, t: &[Sym]) -> usize {
        self.pv.clear();
        self.pv.resize(blocks, !0u64);
        self.mv.clear();
        self.mv.resize(blocks, 0);
        let mut score = m;
        let last = blocks - 1;
        let last_high = 1u64 << ((m - 1) % 64);
        for c in t {
            let base = self.index.get(c).map(|&r| r as usize * blocks);
            let mut carry_ph = 1u64;
            let mut carry_mh = 0u64;
            for bidx in 0..blocks {
                let eq = base.map_or(0, |bs| self.peq[bs + bidx]);
                let pvb = self.pv[bidx];
                let mvb = self.mv[bidx];
                let xv = eq | mvb;
                let eqc = eq | carry_mh;
                let xh = (((eqc & pvb).wrapping_add(pvb)) ^ pvb) | eqc;
                let mut ph = mvb | !(xh | pvb);
                let mut mh = pvb & xh;
                if bidx == last {
                    if ph & last_high != 0 {
                        score += 1;
                    }
                    if mh & last_high != 0 {
                        score -= 1;
                    }
                }
                let ph_out = ph >> 63;
                let mh_out = mh >> 63;
                ph = (ph << 1) | carry_ph;
                mh = (mh << 1) | carry_mh;
                self.pv[bidx] = mh | !(xv | ph);
                self.mv[bidx] = ph & xv;
                carry_ph = ph_out;
                carry_mh = mh_out;
            }
        }
        score
    }
}

/// Character-level Levenshtein between two strings.
///
/// ASCII inputs use Myers' bit-parallel algorithm; other inputs decode to
/// `char` vectors and use the generic DP.
pub fn char_edit_distance(a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        myers::distance(a.as_bytes(), b.as_bytes())
    } else {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        edit_distance(&av, &bv)
    }
}

/// Word-level Levenshtein between two strings (Table VII's metric).
///
/// Tokens are the canonical word sequence of [`crate::token::words`]; words
/// are interned so the bit-parallel [`SymMyers`] kernel compares `u32`s.
pub fn word_edit_distance(a: &str, b: &str) -> usize {
    // One-shot calls never resolve symbols back to strings, so instead of a
    // full `Interner` (which copies each distinct word into an owned table),
    // a borrowed-key map over the input strings assigns dense symbols with
    // zero string copies.
    let ta = crate::token::tokenize(a);
    let tb = crate::token::tokenize(b);
    let mut map: FxHashMap<&str, Sym> =
        FxHashMap::with_capacity_and_hasher(ta.len() + tb.len(), Default::default());
    let mut next = 0u32;
    let mut sym_of = |word| {
        *map.entry(word).or_insert_with(|| {
            let sym = Sym(next);
            next += 1;
            sym
        })
    };
    let sa: Vec<Sym> = ta.iter().map(|t| sym_of(t.text(a))).collect();
    let sb: Vec<Sym> = tb.iter().map(|t| sym_of(t.text(b))).collect();
    SymMyers::new().distance(&sa, &sb)
}

/// A reusable word-level distance calculator sharing one interner, one
/// tokenisation memo, and one [`SymMyers`] scratch across many calls;
/// preferred in dataset-scale loops (α-selection ranks tens of thousands of
/// pairs, and instructions repeat heavily). After warm-up, a query over
/// already-seen strings performs zero heap allocations.
#[derive(Debug, Default)]
pub struct WordDistance {
    interner: crate::intern::Interner,
    cache: FxHashMap<Box<str>, Vec<Sym>>,
    myers: SymMyers,
}

impl WordDistance {
    /// Creates a calculator.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_cached(&mut self, s: &str) {
        if !self.cache.contains_key(s) {
            let v = self.interner.intern_words(s);
            self.cache.insert(s.into(), v);
        }
    }

    /// Word-level edit distance between `a` and `b`.
    pub fn distance(&mut self, a: &str, b: &str) -> usize {
        self.ensure_cached(a);
        self.ensure_cached(b);
        // lint: allow(P1, reason = "ensure_cached on the two lines above inserts both keys; the borrow rules force the re-lookup, not a data condition")
        let sa = self.cache.get(a).expect("cached above");
        // lint: allow(P1, reason = "ensure_cached on the lines above inserts both keys; the borrow rules force the re-lookup, not a data condition")
        let sb = self.cache.get(b).expect("cached above");
        self.myers.distance(sa, sb)
    }

    /// Word-level edit distance between `a` and `b` if it is `<= bound`,
    /// else `None` — the `k`-bounded near-match query.
    ///
    /// Uses the banded DP ([`edit_distance_bounded`]) over the interned
    /// word symbols, so a far-apart pair costs O(bound·words) instead of
    /// O(words²); candidate probing in content-addressed caches runs this
    /// against many stored entries and needs the early exit.
    pub fn distance_bounded(&mut self, a: &str, b: &str, bound: usize) -> Option<usize> {
        self.ensure_cached(a);
        self.ensure_cached(b);
        // lint: allow(P1, reason = "ensure_cached on the two lines above inserts both keys; the borrow rules force the re-lookup, not a data condition")
        let sa = self.cache.get(a).expect("cached above");
        // lint: allow(P1, reason = "ensure_cached on the lines above inserts both keys; the borrow rules force the re-lookup, not a data condition")
        let sb = self.cache.get(b).expect("cached above");
        edit_distance_bounded(sa, sb, bound)
    }

    /// Clears the memoisation cache (the interner is retained). Call between
    /// datasets, not between records: keeping the cache across a whole
    /// ranking pass is what makes repeated instructions free.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(char_edit_distance("kitten", "sitting"), 3);
        assert_eq!(char_edit_distance("flaw", "lawn"), 2);
        assert_eq!(char_edit_distance("", ""), 0);
        assert_eq!(char_edit_distance("abc", ""), 3);
        assert_eq!(char_edit_distance("", "abc"), 3);
        assert_eq!(char_edit_distance("same", "same"), 0);
    }

    #[test]
    fn generic_dp_matches_reference_small() {
        // Full-matrix reference implementation.
        fn reference(a: &[u8], b: &[u8]) -> usize {
            let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
            for (i, row) in dp.iter_mut().enumerate() {
                row[0] = i;
            }
            for (j, cell) in dp[0].iter_mut().enumerate() {
                *cell = j;
            }
            for i in 1..=a.len() {
                for j in 1..=b.len() {
                    let sub = dp[i - 1][j - 1] + usize::from(a[i - 1] != b[j - 1]);
                    dp[i][j] = sub.min(dp[i - 1][j] + 1).min(dp[i][j - 1] + 1);
                }
            }
            dp[a.len()][b.len()]
        }
        let cases = [
            ("sunday", "saturday"),
            ("abcdef", "azced"),
            ("levenshtein", "meilenstein"),
            ("aaaa", "bbbb"),
            ("x", "xxxxxxxx"),
        ];
        for (a, b) in cases {
            let want = reference(a.as_bytes(), b.as_bytes());
            assert_eq!(
                edit_distance(a.as_bytes(), b.as_bytes()),
                want,
                "{a} vs {b}"
            );
            assert_eq!(
                myers::distance(a.as_bytes(), b.as_bytes()),
                want,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn myers_blocked_long_pattern() {
        // Pattern > 64 bytes exercises the blocked path.
        let a = "the quick brown fox jumps over the lazy dog repeatedly and then naps".repeat(2);
        let mut b = a.clone();
        b.replace_range(10..15, "XXXXX"); // 5 substitutions
        b.push_str("tail"); // 4 insertions
        assert_eq!(myers::distance(a.as_bytes(), b.as_bytes()), 9);
        assert_eq!(
            myers::distance(a.as_bytes(), b.as_bytes()),
            edit_distance(a.as_bytes(), b.as_bytes())
        );
    }

    #[test]
    fn bounded_within_and_beyond() {
        let (a, b) = ("kitten".as_bytes(), "sitting".as_bytes());
        assert_eq!(edit_distance_bounded(a, b, 3), Some(3));
        assert_eq!(edit_distance_bounded(a, b, 5), Some(3));
        assert_eq!(edit_distance_bounded(a, b, 2), None);
        assert_eq!(edit_distance_bounded(a, b, 0), None);
        assert_eq!(edit_distance_bounded(a, a, 0), Some(0));
    }

    #[test]
    fn bounded_length_gap_shortcut() {
        assert_eq!(edit_distance_bounded(b"abcdefgh", b"a", 3), None);
        assert_eq!(edit_distance_bounded(b"abcdefgh", b"a", 7), Some(7));
    }

    #[test]
    fn unicode_char_distance() {
        assert_eq!(char_edit_distance("café", "cafe"), 1);
        assert_eq!(char_edit_distance("日本語", "日本"), 1);
    }

    #[test]
    fn word_distance_counts_tokens_not_chars() {
        assert_eq!(word_edit_distance("the quick fox", "the slow fox"), 1);
        assert_eq!(word_edit_distance("a b c", "a b c d"), 1);
        assert_eq!(word_edit_distance("same text here", "same text here"), 0);
        // Punctuation is a token.
        assert_eq!(word_edit_distance("hello world", "hello, world"), 1);
    }

    #[test]
    fn word_distance_calculator_matches_free_function() {
        let mut wd = WordDistance::new();
        let pairs = [
            ("rewrite this please", "please rewrite this text"),
            ("", "anything at all"),
            ("identical", "identical"),
        ];
        for (a, b) in pairs {
            assert_eq!(wd.distance(a, b), word_edit_distance(a, b));
        }
    }

    #[test]
    fn sym_myers_matches_generic_dp() {
        let mut sm = SymMyers::new();
        let cases: [(&[u32], &[u32]); 6] = [
            (&[], &[]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 2, 3], &[1, 9, 3, 4]),
            (&[5, 5, 5, 5], &[6, 6]),
            (&[0], &[0, 1, 2, 3, 4, 5, 6, 7]),
            (&[1, 2, 3, 4, 5], &[5, 4, 3, 2, 1]),
        ];
        for (a, b) in cases {
            let sa: Vec<Sym> = a.iter().map(|&x| Sym(x)).collect();
            let sb: Vec<Sym> = b.iter().map(|&x| Sym(x)).collect();
            assert_eq!(
                sm.distance(&sa, &sb),
                edit_distance(&sa, &sb),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn sym_myers_blocked_long_pattern() {
        // A >64-symbol pattern exercises the blocked variant; scratch reuse
        // across calls must not leak state.
        let mut sm = SymMyers::new();
        let a: Vec<Sym> = (0..150).map(|i| Sym(i % 37)).collect();
        let mut b = a.clone();
        b[10] = Sym(999);
        b[80] = Sym(998);
        b.extend([Sym(997), Sym(996)]);
        assert_eq!(sm.distance(&a, &b), edit_distance(&a, &b));
        assert_eq!(sm.distance(&a, &b), 4);
        // A short pattern right after a long one reuses the same scratch.
        let short: Vec<Sym> = vec![Sym(1), Sym(2)];
        assert_eq!(sm.distance(&short, &a), edit_distance(&short, &a));
    }

    #[test]
    fn word_distance_bounded_matches_exact_within_bound() {
        let mut wd = WordDistance::new();
        let cases = [
            ("rewrite this please", "please rewrite this text"),
            ("the quick fox", "the slow fox"),
            ("identical words here", "identical words here"),
            ("", "anything at all"),
        ];
        for (a, b) in cases {
            let exact = word_edit_distance(a, b);
            assert_eq!(wd.distance_bounded(a, b, exact), Some(exact), "{a} vs {b}");
            assert_eq!(wd.distance_bounded(a, b, exact + 3), Some(exact));
            if exact > 0 {
                assert_eq!(wd.distance_bounded(a, b, exact - 1), None);
            }
        }
    }

    #[test]
    fn word_distance_handles_non_ascii() {
        let mut wd = WordDistance::new();
        assert_eq!(
            wd.distance("日本語 の 文章", "日本語 の 記事"),
            word_edit_distance("日本語 の 文章", "日本語 の 記事")
        );
        assert_eq!(wd.distance("café au lait", "café au lait"), 0);
    }

    #[test]
    fn symmetry_and_identity() {
        let cases = [("abc", "cba"), ("", "xyz"), ("hello world", "world hello")];
        for (a, b) in cases {
            assert_eq!(char_edit_distance(a, b), char_edit_distance(b, a));
            assert_eq!(char_edit_distance(a, a), 0);
        }
    }
}
