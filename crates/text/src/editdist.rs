//! Levenshtein edit distance.
//!
//! CoachLM uses edit distance in two load-bearing places:
//!
//! * **α-selection (§II-F2):** the expert-revision pairs `(x, x_r)` are
//!   ranked by edit distance and the top-α fraction forms the coach-tuning
//!   set `C_α`.
//! * **Dataset statistics (Table VII):** the revised ALPACA52K dataset is
//!   characterised by average *word-level* edit distance.
//!
//! Three implementations are provided and cross-checked by tests:
//!
//! * [`edit_distance`] — classic two-row dynamic programming over any
//!   `PartialEq` items, with common prefix/suffix trimming. O(nm) time,
//!   O(min(n,m)) space.
//! * [`edit_distance_bounded`] — banded DP that answers "distance, if ≤ k"
//!   in O(k·min(n,m)) time; used by hot loops that only need a threshold.
//! * [`myers`] — Myers' 1999 bit-parallel algorithm over bytes, processing
//!   64 DP columns per machine word; the fast path for character-level
//!   distance on ASCII text.

use crate::fxhash::FxHashMap;

/// Levenshtein distance between two slices (unit costs).
///
/// Works over any `PartialEq` item type: bytes, chars, or interned word
/// symbols. Trims common prefixes/suffixes first, then runs two-row DP over
/// the remainder.
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let (a, b) = trim_common(a, b);
    // Ensure `b` is the shorter side so the DP rows are minimal.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = vec![0; b.len() + 1];
    for (i, ai) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ai != bj);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Levenshtein distance if it is `<= bound`, else `None`.
///
/// Runs a banded DP with band half-width `bound`; cost O(bound·min(n,m)).
pub fn edit_distance_bounded<T: PartialEq>(a: &[T], b: &[T], bound: usize) -> Option<usize> {
    let (a, b) = trim_common(a, b);
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let (n, m) = (a.len(), b.len());
    if n - m > bound {
        return None;
    }
    if m == 0 {
        return Some(n);
    }
    const INF: usize = usize::MAX / 2;
    // Row over the shorter sequence `b`; band of columns [lo, hi] per row i.
    let mut prev = vec![INF; m + 1];
    let mut curr = vec![INF; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(bound.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(bound).max(1);
        let hi = (i + bound).min(m);
        if lo > hi {
            return None;
        }
        curr[lo - 1] = if lo == 1 { i } else { INF };
        let mut row_min = curr[lo - 1];
        for j in lo..=hi {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let del = prev[j].saturating_add(1);
            let ins = curr[j - 1].saturating_add(1);
            curr[j] = sub.min(del).min(ins);
            row_min = row_min.min(curr[j]);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
        // Invalidate stale cells outside the next band.
        if hi < m {
            prev[hi + 1] = INF;
        }
    }
    let d = prev[m];
    (d <= bound).then_some(d)
}

/// Strips common prefix and suffix, returning the differing cores.
#[inline]
fn trim_common<'x, T: PartialEq>(a: &'x [T], b: &'x [T]) -> (&'x [T], &'x [T]) {
    let pre = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[pre..], &b[pre..]);
    let suf = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&a[..a.len() - suf], &b[..b.len() - suf])
}

/// Myers' bit-parallel Levenshtein over byte strings.
pub mod myers {
    /// Bit-parallel distance for patterns up to 64 bytes; falls back to the
    /// blocked variant for longer inputs.
    pub fn distance(a: &[u8], b: &[u8]) -> usize {
        // Use the shorter string as the "pattern" whose DP column is packed
        // into machine words.
        let (p, t) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        if p.is_empty() {
            return t.len();
        }
        if p.len() <= 64 {
            distance_64(p, t)
        } else {
            distance_blocked(p, t)
        }
    }

    fn distance_64(p: &[u8], t: &[u8]) -> usize {
        debug_assert!(!p.is_empty() && p.len() <= 64);
        let m = p.len();
        let mut peq = [0u64; 256];
        for (i, &c) in p.iter().enumerate() {
            peq[c as usize] |= 1 << i;
        }
        let mut pv: u64 = !0;
        let mut mv: u64 = 0;
        let mut score = m;
        let high = 1u64 << (m - 1);
        for &c in t {
            let eq = peq[c as usize];
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & high != 0 {
                score += 1;
            }
            if mh & high != 0 {
                score -= 1;
            }
            let ph = (ph << 1) | 1;
            pv = (mh << 1) | !(xv | ph);
            mv = ph & xv;
        }
        score
    }

    /// Blocked Myers for patterns longer than 64 bytes (Hyyrö's variant).
    fn distance_blocked(p: &[u8], t: &[u8]) -> usize {
        let m = p.len();
        let w = 64usize;
        let blocks = m.div_ceil(w);
        // Per-block pattern-match bitmasks.
        let mut peq = vec![[0u64; 256]; blocks];
        for (i, &c) in p.iter().enumerate() {
            peq[i / w][c as usize] |= 1 << (i % w);
        }
        let mut pv = vec![!0u64; blocks];
        let mut mv = vec![0u64; blocks];
        let mut score = m;
        let last = blocks - 1;
        let last_high = 1u64 << ((m - 1) % w);
        for &c in t {
            let mut carry_ph = 1u64; // horizontal +1 carries in from column boundary
            let mut carry_mh = 0u64;
            for bidx in 0..blocks {
                let eq = peq[bidx][c as usize];
                let pvb = pv[bidx];
                let mvb = mv[bidx];
                let xv = eq | mvb;
                let eqc = eq | carry_mh;
                let xh = (((eqc & pvb).wrapping_add(pvb)) ^ pvb) | eqc;
                let mut ph = mvb | !(xh | pvb);
                let mut mh = pvb & xh;
                if bidx == last {
                    if ph & last_high != 0 {
                        score += 1;
                    }
                    if mh & last_high != 0 {
                        score -= 1;
                    }
                }
                let ph_out = ph >> 63;
                let mh_out = mh >> 63;
                ph = (ph << 1) | carry_ph;
                mh = (mh << 1) | carry_mh;
                pv[bidx] = mh | !(xv | ph);
                mv[bidx] = ph & xv;
                carry_ph = ph_out;
                carry_mh = mh_out;
            }
        }
        score
    }
}

/// Character-level Levenshtein between two strings.
///
/// ASCII inputs use Myers' bit-parallel algorithm; other inputs decode to
/// `char` vectors and use the generic DP.
pub fn char_edit_distance(a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        myers::distance(a.as_bytes(), b.as_bytes())
    } else {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        edit_distance(&av, &bv)
    }
}

/// Word-level Levenshtein between two strings (Table VII's metric).
///
/// Tokens are the canonical word sequence of [`crate::token::words`]; words
/// are interned so the DP compares `u32`s.
pub fn word_edit_distance(a: &str, b: &str) -> usize {
    let mut interner = crate::intern::Interner::with_capacity(64);
    let sa = interner.intern_words(a);
    let sb = interner.intern_words(b);
    edit_distance(&sa, &sb)
}

/// A reusable word-level distance calculator that shares one interner across
/// many calls; preferred in dataset-scale loops.
#[derive(Debug, Default)]
pub struct WordDistance {
    interner: crate::intern::Interner,
    cache: FxHashMap<Box<str>, Vec<crate::intern::Sym>>,
}

impl WordDistance {
    /// Creates a calculator.
    pub fn new() -> Self {
        Self::default()
    }

    fn syms(&mut self, s: &str) -> Vec<crate::intern::Sym> {
        if let Some(v) = self.cache.get(s) {
            return v.clone();
        }
        let v = self.interner.intern_words(s);
        self.cache.insert(s.into(), v.clone());
        v
    }

    /// Word-level edit distance between `a` and `b`.
    pub fn distance(&mut self, a: &str, b: &str) -> usize {
        let sa = self.syms(a);
        let sb = self.syms(b);
        edit_distance(&sa, &sb)
    }

    /// Clears the memoisation cache (the interner is retained).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(char_edit_distance("kitten", "sitting"), 3);
        assert_eq!(char_edit_distance("flaw", "lawn"), 2);
        assert_eq!(char_edit_distance("", ""), 0);
        assert_eq!(char_edit_distance("abc", ""), 3);
        assert_eq!(char_edit_distance("", "abc"), 3);
        assert_eq!(char_edit_distance("same", "same"), 0);
    }

    #[test]
    fn generic_dp_matches_reference_small() {
        // Full-matrix reference implementation.
        fn reference(a: &[u8], b: &[u8]) -> usize {
            let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
            for (i, row) in dp.iter_mut().enumerate() {
                row[0] = i;
            }
            for (j, cell) in dp[0].iter_mut().enumerate() {
                *cell = j;
            }
            for i in 1..=a.len() {
                for j in 1..=b.len() {
                    let sub = dp[i - 1][j - 1] + usize::from(a[i - 1] != b[j - 1]);
                    dp[i][j] = sub.min(dp[i - 1][j] + 1).min(dp[i][j - 1] + 1);
                }
            }
            dp[a.len()][b.len()]
        }
        let cases = [
            ("sunday", "saturday"),
            ("abcdef", "azced"),
            ("levenshtein", "meilenstein"),
            ("aaaa", "bbbb"),
            ("x", "xxxxxxxx"),
        ];
        for (a, b) in cases {
            let want = reference(a.as_bytes(), b.as_bytes());
            assert_eq!(
                edit_distance(a.as_bytes(), b.as_bytes()),
                want,
                "{a} vs {b}"
            );
            assert_eq!(
                myers::distance(a.as_bytes(), b.as_bytes()),
                want,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn myers_blocked_long_pattern() {
        // Pattern > 64 bytes exercises the blocked path.
        let a = "the quick brown fox jumps over the lazy dog repeatedly and then naps".repeat(2);
        let mut b = a.clone();
        b.replace_range(10..15, "XXXXX"); // 5 substitutions
        b.push_str("tail"); // 4 insertions
        assert_eq!(myers::distance(a.as_bytes(), b.as_bytes()), 9);
        assert_eq!(
            myers::distance(a.as_bytes(), b.as_bytes()),
            edit_distance(a.as_bytes(), b.as_bytes())
        );
    }

    #[test]
    fn bounded_within_and_beyond() {
        let (a, b) = ("kitten".as_bytes(), "sitting".as_bytes());
        assert_eq!(edit_distance_bounded(a, b, 3), Some(3));
        assert_eq!(edit_distance_bounded(a, b, 5), Some(3));
        assert_eq!(edit_distance_bounded(a, b, 2), None);
        assert_eq!(edit_distance_bounded(a, b, 0), None);
        assert_eq!(edit_distance_bounded(a, a, 0), Some(0));
    }

    #[test]
    fn bounded_length_gap_shortcut() {
        assert_eq!(edit_distance_bounded(b"abcdefgh", b"a", 3), None);
        assert_eq!(edit_distance_bounded(b"abcdefgh", b"a", 7), Some(7));
    }

    #[test]
    fn unicode_char_distance() {
        assert_eq!(char_edit_distance("café", "cafe"), 1);
        assert_eq!(char_edit_distance("日本語", "日本"), 1);
    }

    #[test]
    fn word_distance_counts_tokens_not_chars() {
        assert_eq!(word_edit_distance("the quick fox", "the slow fox"), 1);
        assert_eq!(word_edit_distance("a b c", "a b c d"), 1);
        assert_eq!(word_edit_distance("same text here", "same text here"), 0);
        // Punctuation is a token.
        assert_eq!(word_edit_distance("hello world", "hello, world"), 1);
    }

    #[test]
    fn word_distance_calculator_matches_free_function() {
        let mut wd = WordDistance::new();
        let pairs = [
            ("rewrite this please", "please rewrite this text"),
            ("", "anything at all"),
            ("identical", "identical"),
        ];
        for (a, b) in pairs {
            assert_eq!(wd.distance(a, b), word_edit_distance(a, b));
        }
    }

    #[test]
    fn symmetry_and_identity() {
        let cases = [("abc", "cba"), ("", "xyz"), ("hello world", "world hello")];
        for (a, b) in cases {
            assert_eq!(char_edit_distance(a, b), char_edit_distance(b, a));
            assert_eq!(char_edit_distance(a, a), 0);
        }
    }
}
