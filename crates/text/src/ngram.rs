//! N-gram extraction and counting.
//!
//! The language-model substrate (`coachlm-lm`) estimates fluency with an
//! n-gram model; this module provides the windowing and counting primitives.

use crate::fxhash::FxHashMap;
use std::hash::Hash;

/// Iterates over all contiguous windows of length `n` in `items`.
///
/// Returns an empty iterator when `n == 0` or `n > items.len()`.
pub fn ngrams<T>(items: &[T], n: usize) -> impl Iterator<Item = &[T]> {
    let windows = if n == 0 || n > items.len() {
        [].windows(1)
    } else {
        items.windows(n)
    };
    // `[].windows(1)` and `items.windows(n)` have the same type only via
    // the slice; normalise through a filter that never fires for the empty
    // case.
    windows.filter(move |w| w.len() == n)
}

/// Counts of each distinct n-gram of length `n`.
pub fn ngram_counts<T: Clone + Eq + Hash>(items: &[T], n: usize) -> FxHashMap<Vec<T>, u64> {
    let mut map: FxHashMap<Vec<T>, u64> = FxHashMap::default();
    for w in ngrams(items, n) {
        *map.entry(w.to_vec()).or_insert(0) += 1;
    }
    map
}

/// A streaming counter accumulating n-gram statistics over many sequences,
/// for orders `1..=max_order`, with per-order totals.
#[derive(Debug)]
pub struct NgramCounter<T: Clone + Eq + Hash> {
    max_order: usize,
    counts: Vec<FxHashMap<Vec<T>, u64>>, // index = order - 1
    totals: Vec<u64>,
    // Distinct-continuation counts per context, maintained incrementally so
    // Kneser-Ney/Witten-Bell style smoothing is O(1) per query.
    continuation_counts: FxHashMap<Vec<T>, usize>,
}

impl<T: Clone + Eq + Hash> NgramCounter<T> {
    /// Creates a counter for orders `1..=max_order`.
    ///
    /// # Panics
    /// Panics if `max_order == 0`.
    pub fn new(max_order: usize) -> Self {
        assert!(max_order >= 1, "max_order must be at least 1");
        Self {
            max_order,
            counts: (0..max_order).map(|_| FxHashMap::default()).collect(),
            totals: vec![0; max_order],
            continuation_counts: FxHashMap::default(),
        }
    }

    /// Maximum n-gram order tracked.
    pub fn max_order(&self) -> usize {
        self.max_order
    }

    /// Accumulates all n-grams of one sequence.
    pub fn observe(&mut self, seq: &[T]) {
        for order in 1..=self.max_order {
            for w in ngrams(seq, order) {
                let entry = self.counts[order - 1].entry(w.to_vec()).or_insert(0);
                *entry += 1;
                if *entry == 1 && order >= 2 {
                    // First sighting of this gram: its context gained a
                    // distinct continuation.
                    *self
                        .continuation_counts
                        .entry(w[..order - 1].to_vec())
                        .or_insert(0) += 1;
                }
                self.totals[order - 1] += 1;
            }
        }
    }

    /// Count of a specific n-gram (its length selects the order).
    pub fn count(&self, gram: &[T]) -> u64 {
        if gram.is_empty() || gram.len() > self.max_order {
            return 0;
        }
        self.counts[gram.len() - 1].get(gram).copied().unwrap_or(0)
    }

    /// Total number of n-gram tokens observed at `order`.
    pub fn total(&self, order: usize) -> u64 {
        if order == 0 || order > self.max_order {
            return 0;
        }
        self.totals[order - 1]
    }

    /// Number of *distinct* n-grams observed at `order` (the vocabulary of
    /// that order), used by smoothing.
    pub fn distinct(&self, order: usize) -> usize {
        if order == 0 || order > self.max_order {
            return 0;
        }
        self.counts[order - 1].len()
    }

    /// Number of distinct continuations `w` such that `context ++ [w]` was
    /// observed; the continuation count used by Kneser-Ney/Witten-Bell
    /// smoothing. O(1): maintained incrementally during [`Self::observe`].
    pub fn continuations(&self, context: &[T]) -> usize {
        if context.is_empty() || context.len() + 1 > self.max_order {
            return 0;
        }
        self.continuation_counts.get(context).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngrams_basic() {
        let v = [1, 2, 3, 4];
        let bigrams: Vec<&[i32]> = ngrams(&v, 2).collect();
        assert_eq!(bigrams, vec![&[1, 2][..], &[2, 3], &[3, 4]]);
    }

    #[test]
    fn ngrams_degenerate() {
        let v = [1, 2];
        assert_eq!(ngrams(&v, 0).count(), 0);
        assert_eq!(ngrams(&v, 3).count(), 0);
        assert_eq!(ngrams(&v, 2).count(), 1);
        let empty: [i32; 0] = [];
        assert_eq!(ngrams(&empty, 1).count(), 0);
    }

    #[test]
    fn counts_accumulate() {
        let words = ["a", "b", "a", "b", "a"];
        let c = ngram_counts(&words, 2);
        assert_eq!(c[&vec!["a", "b"]], 2);
        assert_eq!(c[&vec!["b", "a"]], 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counter_orders_and_totals() {
        let mut nc = NgramCounter::new(3);
        nc.observe(&["the", "cat", "sat"]);
        nc.observe(&["the", "cat", "ran"]);
        assert_eq!(nc.count(&["the"]), 2);
        assert_eq!(nc.count(&["the", "cat"]), 2);
        assert_eq!(nc.count(&["cat", "sat"]), 1);
        assert_eq!(nc.count(&["the", "cat", "sat"]), 1);
        assert_eq!(nc.total(1), 6);
        assert_eq!(nc.total(2), 4);
        assert_eq!(nc.total(3), 2);
        assert_eq!(nc.distinct(1), 4);
    }

    #[test]
    fn counter_continuations() {
        let mut nc = NgramCounter::new(2);
        nc.observe(&["the", "cat"]);
        nc.observe(&["the", "dog"]);
        nc.observe(&["the", "cat"]);
        assert_eq!(nc.continuations(&["the"]), 2);
        assert_eq!(nc.continuations(&["cat"]), 0);
    }

    #[test]
    fn counter_out_of_range_queries() {
        let mut nc = NgramCounter::new(2);
        nc.observe(&["a", "b"]);
        assert_eq!(nc.count(&[]), 0);
        assert_eq!(nc.count(&["a", "b", "c"]), 0);
        assert_eq!(nc.total(0), 0);
        assert_eq!(nc.total(9), 0);
        assert_eq!(nc.distinct(9), 0);
    }

    #[test]
    #[should_panic(expected = "max_order")]
    fn counter_rejects_zero_order() {
        let _ = NgramCounter::<u8>::new(0);
    }
}
