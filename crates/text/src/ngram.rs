//! N-gram extraction and counting.
//!
//! The language-model substrate (`coachlm-lm`) estimates fluency with an
//! n-gram model; this module provides the windowing and counting primitives.
//!
//! [`NgramCounter`] stores its tables keyed by **packed 64-bit
//! fingerprints** (a rolling hash over the gram's elements) instead of
//! `Vec<T>` keys. Queries — [`NgramCounter::count`],
//! [`NgramCounter::continuations`], and the fingerprint-based variants the
//! language model's `prob` path uses — therefore never allocate: they hash
//! the query elements into a `u64` and do one integer-keyed map lookup.
//! Fingerprints are collision-checked at build time (see
//! [`NgramCounter::observe`]), so the packed tables are exact, not
//! approximate.

use crate::fxhash::{FxHashMap, FxHasher};
use std::collections::hash_map::Entry;
use std::hash::{Hash, Hasher};

/// Iterates over all contiguous windows of length `n` in `items`.
///
/// Returns an empty iterator when `n == 0` or `n > items.len()`.
pub fn ngrams<T>(items: &[T], n: usize) -> impl Iterator<Item = &[T]> {
    // `windows` panics on width 0 and naturally yields nothing when the
    // slice is shorter than the width, so only n == 0 needs normalising.
    let (items, n) = if n == 0 { (&items[..0], 1) } else { (items, n) };
    items.windows(n)
}

/// Counts of each distinct n-gram of length `n`.
pub fn ngram_counts<T: Clone + Eq + Hash>(items: &[T], n: usize) -> FxHashMap<Vec<T>, u64> {
    let mut map: FxHashMap<Vec<T>, u64> = FxHashMap::default();
    for w in ngrams(items, n) {
        // Lookup by slice first: repeat grams (the common case) never pay
        // the `to_vec`.
        if let Some(count) = map.get_mut(w) {
            *count += 1;
        } else {
            map.insert(w.to_vec(), 1);
        }
    }
    map
}

/// Seed of the rolling fingerprint (an odd 64-bit constant, so the empty
/// gram maps to something other than zero).
const FP_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
/// Post-mix multiplier of the rolling fingerprint (odd, so multiplication
/// is a bijection on `u64`).
const FP_MIX: u64 = 0x2545_F491_4F6C_DD1D;

/// A streaming counter accumulating n-gram statistics over many sequences,
/// for orders `1..=max_order`, with per-order totals.
///
/// Tables are keyed by packed fingerprints; see the module docs.
#[derive(Debug)]
pub struct NgramCounter<T: Clone + Eq + Hash> {
    max_order: usize,
    counts: Vec<FxHashMap<u64, u64>>, // index = order - 1, key = fingerprint
    totals: Vec<u64>,
    // Distinct-continuation counts per context fingerprint, maintained
    // incrementally so Kneser-Ney/Witten-Bell style smoothing is O(1) per
    // query.
    continuation_counts: FxHashMap<u64, usize>,
    // Build-time collision ledger: every distinct observed gram (of any
    // order) keyed by its fingerprint. Only touched during `observe`; the
    // query path never reads it.
    ledger: FxHashMap<u64, Box<[T]>>,
}

impl<T: Clone + Eq + Hash> NgramCounter<T> {
    /// Creates a counter for orders `1..=max_order`.
    ///
    /// # Panics
    /// Panics if `max_order == 0`.
    pub fn new(max_order: usize) -> Self {
        assert!(max_order >= 1, "max_order must be at least 1");
        Self {
            max_order,
            counts: (0..max_order).map(|_| FxHashMap::default()).collect(),
            totals: vec![0; max_order],
            continuation_counts: FxHashMap::default(),
            ledger: FxHashMap::default(),
        }
    }

    /// Maximum n-gram order tracked.
    pub fn max_order(&self) -> usize {
        self.max_order
    }

    /// The fingerprint of the empty gram; extend with
    /// [`Self::fingerprint_extend`].
    #[inline]
    pub fn fingerprint_seed() -> u64 {
        FP_SEED
    }

    /// Extends a gram fingerprint by one element. The fingerprint of
    /// `[a, b, c]` is `extend(extend(extend(seed, a), b), c)`, so callers
    /// holding a context's fingerprint get the full gram's fingerprint for
    /// one element hash — no buffer assembly.
    #[inline]
    pub fn fingerprint_extend(fp: u64, elem: &T) -> u64 {
        let mut h = FxHasher::default();
        elem.hash(&mut h);
        (fp.rotate_left(5) ^ h.finish()).wrapping_mul(FP_MIX)
    }

    /// The packed fingerprint of a whole gram.
    #[inline]
    pub fn fingerprint(gram: &[T]) -> u64 {
        gram.iter().fold(FP_SEED, Self::fingerprint_extend)
    }

    /// Accumulates all n-grams of one sequence.
    ///
    /// # Panics
    /// Panics if two distinct grams collide on the 64-bit fingerprint
    /// (probability ≈ d²/2⁶⁴ for d distinct grams — negligible at any
    /// realistic corpus size, but *checked*, so a collision can never
    /// silently corrupt counts).
    pub fn observe(&mut self, seq: &[T]) {
        for order in 1..=self.max_order {
            for w in ngrams(seq, order) {
                let fp = Self::fingerprint(w);
                match self.ledger.entry(fp) {
                    Entry::Vacant(v) => {
                        v.insert(w.to_vec().into_boxed_slice());
                    }
                    Entry::Occupied(e) => assert!(
                        e.get().as_ref() == w,
                        "n-gram fingerprint collision at {fp:#018x}"
                    ),
                }
                let entry = self.counts[order - 1].entry(fp).or_insert(0);
                *entry += 1;
                if *entry == 1 && order >= 2 {
                    // First sighting of this gram: its context gained a
                    // distinct continuation.
                    let ctx_fp = Self::fingerprint(&w[..order - 1]);
                    *self.continuation_counts.entry(ctx_fp).or_insert(0) += 1;
                }
                self.totals[order - 1] += 1;
            }
        }
    }

    /// Count of a specific n-gram (its length selects the order).
    /// Zero-allocation: hashes the gram into a fingerprint and looks it up.
    pub fn count(&self, gram: &[T]) -> u64 {
        if gram.is_empty() || gram.len() > self.max_order {
            return 0;
        }
        self.count_fp(gram.len(), Self::fingerprint(gram))
    }

    /// Count of the gram with fingerprint `fp` at `order`; the raw lookup
    /// behind [`Self::count`] for callers that build fingerprints
    /// incrementally.
    #[inline]
    pub fn count_fp(&self, order: usize, fp: u64) -> u64 {
        if order == 0 || order > self.max_order {
            return 0;
        }
        self.counts[order - 1].get(&fp).copied().unwrap_or(0)
    }

    /// Total number of n-gram tokens observed at `order`.
    pub fn total(&self, order: usize) -> u64 {
        if order == 0 || order > self.max_order {
            return 0;
        }
        self.totals[order - 1]
    }

    /// Number of *distinct* n-grams observed at `order` (the vocabulary of
    /// that order), used by smoothing.
    pub fn distinct(&self, order: usize) -> usize {
        if order == 0 || order > self.max_order {
            return 0;
        }
        self.counts[order - 1].len()
    }

    /// Number of distinct continuations `w` such that `context ++ [w]` was
    /// observed; the continuation count used by Kneser-Ney/Witten-Bell
    /// smoothing. O(1) and zero-allocation: maintained incrementally during
    /// [`Self::observe`].
    pub fn continuations(&self, context: &[T]) -> usize {
        if context.is_empty() {
            return 0;
        }
        self.continuations_fp(context.len(), Self::fingerprint(context))
    }

    /// Continuation count for the context with fingerprint `fp` and length
    /// `context_len`; the raw lookup behind [`Self::continuations`].
    #[inline]
    pub fn continuations_fp(&self, context_len: usize, fp: u64) -> usize {
        if context_len == 0 || context_len + 1 > self.max_order {
            return 0;
        }
        self.continuation_counts.get(&fp).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngrams_basic() {
        let v = [1, 2, 3, 4];
        let bigrams: Vec<&[i32]> = ngrams(&v, 2).collect();
        assert_eq!(bigrams, vec![&[1, 2][..], &[2, 3], &[3, 4]]);
    }

    #[test]
    fn ngrams_degenerate() {
        let v = [1, 2];
        assert_eq!(ngrams(&v, 0).count(), 0);
        assert_eq!(ngrams(&v, 3).count(), 0);
        assert_eq!(ngrams(&v, 2).count(), 1);
        let empty: [i32; 0] = [];
        assert_eq!(ngrams(&empty, 1).count(), 0);
    }

    #[test]
    fn counts_accumulate() {
        let words = ["a", "b", "a", "b", "a"];
        let c = ngram_counts(&words, 2);
        assert_eq!(c[&vec!["a", "b"]], 2);
        assert_eq!(c[&vec!["b", "a"]], 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counter_orders_and_totals() {
        let mut nc = NgramCounter::new(3);
        nc.observe(&["the", "cat", "sat"]);
        nc.observe(&["the", "cat", "ran"]);
        assert_eq!(nc.count(&["the"]), 2);
        assert_eq!(nc.count(&["the", "cat"]), 2);
        assert_eq!(nc.count(&["cat", "sat"]), 1);
        assert_eq!(nc.count(&["the", "cat", "sat"]), 1);
        assert_eq!(nc.total(1), 6);
        assert_eq!(nc.total(2), 4);
        assert_eq!(nc.total(3), 2);
        assert_eq!(nc.distinct(1), 4);
    }

    #[test]
    fn counter_continuations() {
        let mut nc = NgramCounter::new(2);
        nc.observe(&["the", "cat"]);
        nc.observe(&["the", "dog"]);
        nc.observe(&["the", "cat"]);
        assert_eq!(nc.continuations(&["the"]), 2);
        assert_eq!(nc.continuations(&["cat"]), 0);
    }

    #[test]
    fn counter_out_of_range_queries() {
        let mut nc = NgramCounter::new(2);
        nc.observe(&["a", "b"]);
        assert_eq!(nc.count(&[]), 0);
        assert_eq!(nc.count(&["a", "b", "c"]), 0);
        assert_eq!(nc.total(0), 0);
        assert_eq!(nc.total(9), 0);
        assert_eq!(nc.distinct(9), 0);
    }

    #[test]
    fn fingerprints_compose_incrementally() {
        let gram = ["the", "cat", "sat"];
        let mut fp = NgramCounter::<&str>::fingerprint_seed();
        for w in &gram {
            fp = NgramCounter::<&str>::fingerprint_extend(fp, w);
        }
        assert_eq!(fp, NgramCounter::<&str>::fingerprint(&gram));
    }

    #[test]
    fn fp_queries_match_slice_queries() {
        let mut nc = NgramCounter::new(3);
        nc.observe(&["a", "b", "c", "a", "b"]);
        for gram in [&["a"][..], &["a", "b"], &["a", "b", "c"], &["z"]] {
            let fp = NgramCounter::<&str>::fingerprint(gram);
            assert_eq!(nc.count(gram), nc.count_fp(gram.len(), fp));
        }
        let ctx = ["a", "b"];
        assert_eq!(
            nc.continuations(&ctx),
            nc.continuations_fp(2, NgramCounter::<&str>::fingerprint(&ctx))
        );
    }

    #[test]
    #[should_panic(expected = "max_order")]
    fn counter_rejects_zero_order() {
        let _ = NgramCounter::<u8>::new(0);
    }
}
