//! LCS-based token diffs and alignments.
//!
//! Coach instruction tuning, as reproduced here, learns *revision rules* by
//! aligning an original instruction pair `x` with its expert-revised version
//! `x_r` (§II-F1). The alignment is a token-level edit script: runs of equal
//! tokens interleaved with replace/insert/delete chunks. Each non-equal chunk
//! becomes a candidate rule for the phrase-rule transducer in `coachlm-lm`.

use std::ops::Range;

/// One operation of an [`EditScript`], expressed as token ranges into the
/// two input sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// `a[a_range]` equals `b[b_range]` (ranges have equal length).
    Equal {
        /// Range in the first sequence.
        a_range: Range<usize>,
        /// Range in the second sequence.
        b_range: Range<usize>,
    },
    /// `a[a_range]` was deleted.
    Delete {
        /// Range in the first sequence.
        a_range: Range<usize>,
    },
    /// `b[b_range]` was inserted.
    Insert {
        /// Range in the second sequence.
        b_range: Range<usize>,
    },
    /// `a[a_range]` was replaced by `b[b_range]`.
    Replace {
        /// Range in the first sequence.
        a_range: Range<usize>,
        /// Range in the second sequence.
        b_range: Range<usize>,
    },
}

impl EditOp {
    /// Whether this op changes anything.
    pub fn is_change(&self) -> bool {
        !matches!(self, EditOp::Equal { .. })
    }
}

/// An ordered sequence of [`EditOp`]s covering both inputs exactly once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditScript {
    /// The operations, in input order.
    pub ops: Vec<EditOp>,
}

impl EditScript {
    /// Number of changed tokens (deleted + inserted + replaced on both
    /// sides), a rough "revision magnitude".
    pub fn change_weight(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                EditOp::Equal { .. } => 0,
                EditOp::Delete { a_range } => a_range.len(),
                EditOp::Insert { b_range } => b_range.len(),
                EditOp::Replace { a_range, b_range } => a_range.len().max(b_range.len()),
            })
            .sum()
    }

    /// Whether the script is a pure copy (no changes).
    pub fn is_identity(&self) -> bool {
        self.ops.iter().all(|op| !op.is_change())
    }

    /// Iterates the changed chunks as `(a_range, b_range)` pairs, where an
    /// insert has an empty `a_range` anchored at its position and a delete an
    /// empty `b_range`.
    pub fn changes(&self) -> impl Iterator<Item = (Range<usize>, Range<usize>)> + '_ {
        let mut a_pos = 0usize;
        let mut b_pos = 0usize;
        self.ops.iter().filter_map(move |op| match op {
            EditOp::Equal { a_range, b_range } => {
                a_pos = a_range.end;
                b_pos = b_range.end;
                None
            }
            EditOp::Delete { a_range } => {
                let out = (a_range.clone(), b_pos..b_pos);
                a_pos = a_range.end;
                Some(out)
            }
            EditOp::Insert { b_range } => {
                let out = (a_pos..a_pos, b_range.clone());
                b_pos = b_range.end;
                Some(out)
            }
            EditOp::Replace { a_range, b_range } => {
                let out = (a_range.clone(), b_range.clone());
                a_pos = a_range.end;
                b_pos = b_range.end;
                Some(out)
            }
        })
    }
}

/// Computes the LCS-based edit script between two token slices.
///
/// O(nm) time and space; instruction pairs are at most a few hundred tokens,
/// so this is comfortably fast (and exact, unlike heuristic diffs).
pub fn diff_tokens<T: PartialEq>(a: &[T], b: &[T]) -> EditScript {
    // LCS DP table: lcs[i][j] = LCS length of a[i..], b[j..].
    let n = a.len();
    let m = b.len();
    let width = m + 1;
    let mut lcs = vec![0u32; (n + 1) * width];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i * width + j] = if a[i] == b[j] {
                lcs[(i + 1) * width + j + 1] + 1
            } else {
                lcs[(i + 1) * width + j].max(lcs[i * width + j + 1])
            };
        }
    }

    // Backtrack, emitting raw per-token ops, then coalesce.
    #[derive(Clone, Copy, PartialEq)]
    enum Raw {
        Eq,
        Del,
        Ins,
    }
    let mut raw = Vec::with_capacity(n + m);
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            raw.push(Raw::Eq);
            i += 1;
            j += 1;
        } else if lcs[(i + 1) * width + j] >= lcs[i * width + j + 1] {
            raw.push(Raw::Del);
            i += 1;
        } else {
            raw.push(Raw::Ins);
            j += 1;
        }
    }
    raw.extend(std::iter::repeat_n(Raw::Del, n - i));
    raw.extend(std::iter::repeat_n(Raw::Ins, m - j));

    // Coalesce into ranged ops; adjacent Del+Ins runs merge into Replace.
    let mut ops: Vec<EditOp> = Vec::new();
    let (mut ai, mut bj) = (0usize, 0usize);
    let mut k = 0usize;
    while k < raw.len() {
        match raw[k] {
            Raw::Eq => {
                let (a0, b0) = (ai, bj);
                while k < raw.len() && raw[k] == Raw::Eq {
                    ai += 1;
                    bj += 1;
                    k += 1;
                }
                ops.push(EditOp::Equal {
                    a_range: a0..ai,
                    b_range: b0..bj,
                });
            }
            Raw::Del | Raw::Ins => {
                let (a0, b0) = (ai, bj);
                while k < raw.len() && raw[k] != Raw::Eq {
                    match raw[k] {
                        Raw::Del => ai += 1,
                        Raw::Ins => bj += 1,
                        Raw::Eq => unreachable!(),
                    }
                    k += 1;
                }
                ops.push(match (a0 == ai, b0 == bj) {
                    (false, false) => EditOp::Replace {
                        a_range: a0..ai,
                        b_range: b0..bj,
                    },
                    (false, true) => EditOp::Delete { a_range: a0..ai },
                    (true, false) => EditOp::Insert { b_range: b0..bj },
                    (true, true) => unreachable!("empty change chunk"),
                });
            }
        }
    }
    EditScript { ops }
}

/// Convenience: edit script between the word sequences of two strings.
pub fn diff_words<'a>(a: &'a str, b: &'a str) -> (Vec<&'a str>, Vec<&'a str>, EditScript) {
    let wa = crate::token::words(a);
    let wb = crate::token::words(b);
    let script = diff_tokens(&wa, &wb);
    (wa, wb, script)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn script(a: &str, b: &str) -> EditScript {
        let wa: Vec<&str> = a.split_whitespace().collect();
        let wb: Vec<&str> = b.split_whitespace().collect();
        diff_tokens(&wa, &wb)
    }

    #[test]
    fn identical_sequences() {
        let s = script("a b c", "a b c");
        assert!(s.is_identity());
        assert_eq!(s.change_weight(), 0);
        assert_eq!(s.ops.len(), 1);
    }

    #[test]
    fn pure_insert() {
        let s = script("a c", "a b c");
        assert_eq!(
            s.ops,
            vec![
                EditOp::Equal {
                    a_range: 0..1,
                    b_range: 0..1
                },
                EditOp::Insert { b_range: 1..2 },
                EditOp::Equal {
                    a_range: 1..2,
                    b_range: 2..3
                },
            ]
        );
        assert_eq!(s.change_weight(), 1);
    }

    #[test]
    fn pure_delete() {
        let s = script("a b c", "a c");
        assert_eq!(
            s.ops,
            vec![
                EditOp::Equal {
                    a_range: 0..1,
                    b_range: 0..1
                },
                EditOp::Delete { a_range: 1..2 },
                EditOp::Equal {
                    a_range: 2..3,
                    b_range: 1..2
                },
            ]
        );
    }

    #[test]
    fn replace_merges_del_ins() {
        let s = script("the quick fox", "the slow fox");
        assert_eq!(
            s.ops,
            vec![
                EditOp::Equal {
                    a_range: 0..1,
                    b_range: 0..1
                },
                EditOp::Replace {
                    a_range: 1..2,
                    b_range: 1..2
                },
                EditOp::Equal {
                    a_range: 2..3,
                    b_range: 2..3
                },
            ]
        );
    }

    #[test]
    fn disjoint_sequences() {
        let s = script("x y", "p q r");
        assert_eq!(s.ops.len(), 1);
        assert_eq!(
            s.ops[0],
            EditOp::Replace {
                a_range: 0..2,
                b_range: 0..3
            }
        );
        assert_eq!(s.change_weight(), 3);
    }

    #[test]
    fn empty_inputs() {
        let s = script("", "");
        assert!(s.ops.is_empty());
        let s = script("", "a b");
        assert_eq!(s.ops, vec![EditOp::Insert { b_range: 0..2 }]);
        let s = script("a b", "");
        assert_eq!(s.ops, vec![EditOp::Delete { a_range: 0..2 }]);
    }

    #[test]
    fn ranges_cover_inputs_exactly() {
        let a: Vec<&str> = "one two three four five".split_whitespace().collect();
        let b: Vec<&str> = "one two 3 four five six".split_whitespace().collect();
        let s = diff_tokens(&a, &b);
        let mut ai = 0;
        let mut bj = 0;
        for op in &s.ops {
            match op {
                EditOp::Equal { a_range, b_range } | EditOp::Replace { a_range, b_range } => {
                    assert_eq!(a_range.start, ai);
                    assert_eq!(b_range.start, bj);
                    ai = a_range.end;
                    bj = b_range.end;
                }
                EditOp::Delete { a_range } => {
                    assert_eq!(a_range.start, ai);
                    ai = a_range.end;
                }
                EditOp::Insert { b_range } => {
                    assert_eq!(b_range.start, bj);
                    bj = b_range.end;
                }
            }
        }
        assert_eq!(ai, a.len());
        assert_eq!(bj, b.len());
    }

    #[test]
    fn changes_iterator_yields_anchored_chunks() {
        let s = script("a b c d", "a X c d e");
        let chunks: Vec<_> = s.changes().collect();
        assert_eq!(chunks, vec![(1..2, 1..2), (4..4, 4..5)]);
    }

    #[test]
    fn diff_words_uses_canonical_tokens() {
        let (wa, wb, s) = diff_words("Fix it.", "Fix it now.");
        assert_eq!(wa, vec!["Fix", "it", "."]);
        assert_eq!(wb, vec!["Fix", "it", "now", "."]);
        assert_eq!(s.change_weight(), 1);
    }

    #[test]
    fn change_weight_matches_levenshtein_lower_bound() {
        // change_weight >= edit distance (replace chunks may be uneven).
        let cases = [("a b c", "a c"), ("x y z", "x q r z"), ("m n", "n m")];
        for (a, b) in cases {
            let wa: Vec<&str> = a.split_whitespace().collect();
            let wb: Vec<&str> = b.split_whitespace().collect();
            let d = crate::editdist::edit_distance(&wa, &wb);
            assert!(diff_tokens(&wa, &wb).change_weight() >= d);
        }
    }
}
