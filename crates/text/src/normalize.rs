//! Text normalisation utilities.
//!
//! The expert revision process (§II-E) and the criteria engine's readability
//! checks operate on normalised text: collapsed whitespace, tidied
//! punctuation spacing, and sentence-initial capitalisation. These routines
//! are also the building blocks of the "Adjust" revision class in Table IV
//! (68.1 % of instruction revisions are language/layout adjustments).

/// Collapses runs of whitespace to single spaces and trims the ends.
/// Newlines are preserved as single `\n` (layout is meaningful in
/// responses — lists, paragraphs).
pub fn collapse_whitespace(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    let mut pending_newline = false;
    for c in s.chars() {
        if c == '\n' {
            pending_newline = true;
            pending_space = false;
        } else if c.is_whitespace() {
            if !pending_newline {
                pending_space = true;
            }
        } else {
            if pending_newline {
                if !out.is_empty() {
                    out.push('\n');
                }
                pending_newline = false;
            } else if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push(c);
        }
    }
    out
}

/// Fixes spacing around ASCII punctuation: no space before `,.;:!?`, one
/// space after (unless end of string, digit grouping, or another punct).
pub fn fix_punctuation_spacing(s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    let mut out = String::with_capacity(s.len() + 8);
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == ' '
            && i + 1 < chars.len()
            && matches!(chars[i + 1], ',' | '.' | ';' | ':' | '!' | '?')
        {
            // Drop the space before punctuation.
            i += 1;
            continue;
        }
        out.push(c);
        if matches!(c, ',' | ';' | '!' | '?') || (c == '.' && !prev_next_digit(&chars, i)) {
            if let Some(&next) = chars.get(i + 1) {
                if !next.is_whitespace() && !next.is_ascii_punctuation() && !next.is_ascii_digit() {
                    out.push(' ');
                }
            }
        }
        i += 1;
    }
    out
}

fn prev_next_digit(chars: &[char], i: usize) -> bool {
    let prev_digit = i > 0 && chars[i - 1].is_ascii_digit();
    let next_digit = chars.get(i + 1).is_some_and(|c| c.is_ascii_digit());
    prev_digit && next_digit
}

/// Capitalises the first alphabetic character of each sentence.
pub fn capitalize_sentences(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut at_start = true;
    for c in s.chars() {
        if at_start && c.is_alphabetic() {
            out.extend(c.to_uppercase());
            at_start = false;
        } else {
            if matches!(c, '.' | '!' | '?' | '\n') {
                at_start = true;
            } else if !c.is_whitespace() {
                at_start = false;
            }
            out.push(c);
        }
    }
    out
}

/// Ensures the text ends with terminal punctuation (appends `.` if the last
/// non-whitespace char is alphanumeric).
pub fn ensure_terminal_punctuation(s: &str) -> String {
    let trimmed = s.trim_end();
    if trimmed.chars().last().is_some_and(|c| c.is_alphanumeric()) {
        let mut out = trimmed.to_string();
        out.push('.');
        out
    } else {
        trimmed.to_string()
    }
}

/// Lowercases for case-insensitive matching (ASCII fast path).
pub fn fold_case(s: &str) -> String {
    if s.is_ascii() {
        s.to_ascii_lowercase()
    } else {
        s.to_lowercase()
    }
}

/// Full layout normalisation: whitespace, punctuation spacing,
/// capitalisation, terminal punctuation. The "Adjust" primitive.
pub fn normalize_layout(s: &str) -> String {
    ensure_terminal_punctuation(&capitalize_sentences(&fix_punctuation_spacing(
        &collapse_whitespace(s),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapse_basic() {
        assert_eq!(collapse_whitespace("a   b\t c"), "a b c");
        assert_eq!(collapse_whitespace("  lead trail  "), "lead trail");
    }

    #[test]
    fn collapse_preserves_single_newlines() {
        assert_eq!(collapse_whitespace("a\n\n\nb"), "a\nb");
        assert_eq!(collapse_whitespace("a \n b"), "a\nb");
    }

    #[test]
    fn punctuation_spacing() {
        assert_eq!(fix_punctuation_spacing("hello ,world"), "hello, world");
        assert_eq!(fix_punctuation_spacing("wait !now"), "wait! now");
        assert_eq!(fix_punctuation_spacing("ok."), "ok.");
    }

    #[test]
    fn punctuation_spacing_keeps_decimals() {
        assert_eq!(fix_punctuation_spacing("pi is 3.14"), "pi is 3.14");
    }

    #[test]
    fn capitalization() {
        assert_eq!(capitalize_sentences("hello. world"), "Hello. World");
        assert_eq!(capitalize_sentences("a\nb"), "A\nB");
        assert_eq!(capitalize_sentences("123 go. yes"), "123 go. Yes");
    }

    #[test]
    fn terminal_punctuation() {
        assert_eq!(ensure_terminal_punctuation("done"), "done.");
        assert_eq!(ensure_terminal_punctuation("done!"), "done!");
        assert_eq!(ensure_terminal_punctuation("done.  "), "done.");
        assert_eq!(ensure_terminal_punctuation(""), "");
    }

    #[test]
    fn layout_pipeline() {
        assert_eq!(
            normalize_layout("  write   a poem ,please"),
            "Write a poem, please."
        );
    }

    #[test]
    fn fold_case_ascii_and_unicode() {
        assert_eq!(fold_case("HeLLo"), "hello");
        assert_eq!(fold_case("CAFÉ"), "café");
    }

    #[test]
    fn normalize_is_idempotent() {
        let cases = ["  write   a poem ,please", "hello. world", "a\n\nb"];
        for c in cases {
            let once = normalize_layout(c);
            assert_eq!(normalize_layout(&once), once, "input: {c:?}");
        }
    }
}
