//! Property-based tests for the text substrate invariants.

use coachlm_text::diff::{diff_tokens, EditOp};
use coachlm_text::editdist::{
    char_edit_distance, edit_distance, edit_distance_bounded, myers, word_edit_distance,
};
use coachlm_text::normalize::normalize_layout;
use coachlm_text::token::{tokenize, words};
use proptest::prelude::*;

/// Reference full-matrix Levenshtein to validate all optimised variants.
fn reference_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let mut dp: Vec<Vec<usize>> = vec![vec![0; b.len() + 1]; a.len() + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let sub = dp[i - 1][j - 1] + usize::from(a[i - 1] != b[j - 1]);
            dp[i][j] = sub.min(dp[i - 1][j] + 1).min(dp[i][j - 1] + 1);
        }
    }
    dp[a.len()][b.len()]
}

proptest! {
    #[test]
    fn dp_matches_reference(a in "[a-d]{0,30}", b in "[a-d]{0,30}") {
        let want = reference_distance(a.as_bytes(), b.as_bytes());
        prop_assert_eq!(edit_distance(a.as_bytes(), b.as_bytes()), want);
    }

    #[test]
    fn myers_matches_reference(a in "[a-f]{0,80}", b in "[a-f]{0,120}") {
        let want = reference_distance(a.as_bytes(), b.as_bytes());
        prop_assert_eq!(myers::distance(a.as_bytes(), b.as_bytes()), want);
    }

    #[test]
    fn myers_blocked_matches_reference(a in "[ab]{65,140}", b in "[ab]{0,160}") {
        let want = reference_distance(a.as_bytes(), b.as_bytes());
        prop_assert_eq!(myers::distance(a.as_bytes(), b.as_bytes()), want);
    }

    #[test]
    fn bounded_agrees_with_exact(a in "[a-c]{0,25}", b in "[a-c]{0,25}", k in 0usize..12) {
        let exact = edit_distance(a.as_bytes(), b.as_bytes());
        let bounded = edit_distance_bounded(a.as_bytes(), b.as_bytes(), k);
        if exact <= k {
            prop_assert_eq!(bounded, Some(exact));
        } else {
            prop_assert_eq!(bounded, None);
        }
    }

    #[test]
    fn distance_is_a_metric(a in "[a-c]{0,15}", b in "[a-c]{0,15}", c in "[a-c]{0,15}") {
        let dab = char_edit_distance(&a, &b);
        let dba = char_edit_distance(&b, &a);
        prop_assert_eq!(dab, dba); // symmetry
        prop_assert_eq!(char_edit_distance(&a, &a), 0); // identity
        // triangle inequality
        let dac = char_edit_distance(&a, &c);
        let dcb = char_edit_distance(&c, &b);
        prop_assert!(dab <= dac + dcb);
    }

    #[test]
    fn word_distance_bounded_by_token_counts(a in "[a-z ]{0,60}", b in "[a-z ]{0,60}") {
        let d = word_edit_distance(&a, &b);
        let na = words(&a).len();
        let nb = words(&b).len();
        prop_assert!(d <= na.max(nb));
        prop_assert!(d >= na.abs_diff(nb));
    }

    #[test]
    fn diff_script_covers_both_inputs(a in prop::collection::vec(0u8..4, 0..20),
                                      b in prop::collection::vec(0u8..4, 0..20)) {
        let s = diff_tokens(&a, &b);
        let (mut ai, mut bj) = (0usize, 0usize);
        for op in &s.ops {
            match op {
                EditOp::Equal { a_range, b_range } => {
                    prop_assert_eq!(a_range.len(), b_range.len());
                    prop_assert_eq!(&a[a_range.clone()], &b[b_range.clone()]);
                    ai = a_range.end; bj = b_range.end;
                }
                EditOp::Replace { a_range, b_range } => { ai = a_range.end; bj = b_range.end; }
                EditOp::Delete { a_range } => { ai = a_range.end; }
                EditOp::Insert { b_range } => { bj = b_range.end; }
            }
        }
        prop_assert_eq!(ai, a.len());
        prop_assert_eq!(bj, b.len());
    }

    #[test]
    fn diff_change_weight_upper_bounds_distance(a in prop::collection::vec(0u8..3, 0..15),
                                                b in prop::collection::vec(0u8..3, 0..15)) {
        let s = diff_tokens(&a, &b);
        prop_assert!(s.change_weight() >= edit_distance(&a, &b));
        if a == b {
            prop_assert!(s.is_identity());
        }
    }

    #[test]
    fn tokenize_spans_are_ordered_and_in_bounds(s in "\\PC{0,80}") {
        let toks = tokenize(&s);
        let mut last_end = 0usize;
        for t in &toks {
            prop_assert!(t.span.start >= last_end);
            prop_assert!(t.span.end <= s.len());
            prop_assert!(t.span.start < t.span.end);
            prop_assert!(s.is_char_boundary(t.span.start));
            prop_assert!(s.is_char_boundary(t.span.end));
            last_end = t.span.end;
        }
    }

    #[test]
    fn normalize_layout_idempotent(s in "[a-z ,.!?]{0,60}") {
        let once = normalize_layout(&s);
        prop_assert_eq!(normalize_layout(&once), once);
    }
}
