//! Property-based tests for the text substrate invariants.

use coachlm_text::diff::{diff_tokens, EditOp};
use coachlm_text::editdist::{
    char_edit_distance, edit_distance, edit_distance_bounded, myers, word_edit_distance, SymMyers,
    WordDistance,
};
use coachlm_text::fxhash::FxHashMap;
use coachlm_text::intern::{Interner, Sym};
use coachlm_text::ngram::{ngrams, NgramCounter};
use coachlm_text::normalize::normalize_layout;
use coachlm_text::token::{tokenize, words};
use proptest::prelude::*;

/// The pre-fingerprint n-gram counter, reimplemented verbatim with
/// `Vec<T>`-keyed tables, as the cross-check oracle for [`NgramCounter`].
struct VecKeyedCounter {
    max_order: usize,
    counts: Vec<FxHashMap<Vec<u32>, u64>>,
    totals: Vec<u64>,
    continuation_counts: FxHashMap<Vec<u32>, usize>,
}

impl VecKeyedCounter {
    fn new(max_order: usize) -> Self {
        Self {
            max_order,
            counts: (0..max_order).map(|_| FxHashMap::default()).collect(),
            totals: vec![0; max_order],
            continuation_counts: FxHashMap::default(),
        }
    }

    fn observe(&mut self, seq: &[u32]) {
        for order in 1..=self.max_order {
            for w in ngrams(seq, order) {
                let entry = self.counts[order - 1].entry(w.to_vec()).or_insert(0);
                *entry += 1;
                if *entry == 1 && order >= 2 {
                    *self
                        .continuation_counts
                        .entry(w[..order - 1].to_vec())
                        .or_insert(0) += 1;
                }
                self.totals[order - 1] += 1;
            }
        }
    }

    fn count(&self, gram: &[u32]) -> u64 {
        if gram.is_empty() || gram.len() > self.max_order {
            return 0;
        }
        self.counts[gram.len() - 1].get(gram).copied().unwrap_or(0)
    }

    fn continuations(&self, context: &[u32]) -> usize {
        if context.is_empty() || context.len() + 1 > self.max_order {
            return 0;
        }
        self.continuation_counts.get(context).copied().unwrap_or(0)
    }
}

/// Reference full-matrix Levenshtein to validate all optimised variants.
fn reference_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let mut dp: Vec<Vec<usize>> = vec![vec![0; b.len() + 1]; a.len() + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let sub = dp[i - 1][j - 1] + usize::from(a[i - 1] != b[j - 1]);
            dp[i][j] = sub.min(dp[i - 1][j] + 1).min(dp[i][j - 1] + 1);
        }
    }
    dp[a.len()][b.len()]
}

proptest! {
    #[test]
    fn dp_matches_reference(a in "[a-d]{0,30}", b in "[a-d]{0,30}") {
        let want = reference_distance(a.as_bytes(), b.as_bytes());
        prop_assert_eq!(edit_distance(a.as_bytes(), b.as_bytes()), want);
    }

    #[test]
    fn myers_matches_reference(a in "[a-f]{0,80}", b in "[a-f]{0,120}") {
        let want = reference_distance(a.as_bytes(), b.as_bytes());
        prop_assert_eq!(myers::distance(a.as_bytes(), b.as_bytes()), want);
    }

    #[test]
    fn myers_blocked_matches_reference(a in "[ab]{65,140}", b in "[ab]{0,160}") {
        let want = reference_distance(a.as_bytes(), b.as_bytes());
        prop_assert_eq!(myers::distance(a.as_bytes(), b.as_bytes()), want);
    }

    #[test]
    fn bounded_agrees_with_exact(a in "[a-c]{0,25}", b in "[a-c]{0,25}", k in 0usize..12) {
        let exact = edit_distance(a.as_bytes(), b.as_bytes());
        let bounded = edit_distance_bounded(a.as_bytes(), b.as_bytes(), k);
        if exact <= k {
            prop_assert_eq!(bounded, Some(exact));
        } else {
            prop_assert_eq!(bounded, None);
        }
    }

    #[test]
    fn distance_is_a_metric(a in "[a-c]{0,15}", b in "[a-c]{0,15}", c in "[a-c]{0,15}") {
        let dab = char_edit_distance(&a, &b);
        let dba = char_edit_distance(&b, &a);
        prop_assert_eq!(dab, dba); // symmetry
        prop_assert_eq!(char_edit_distance(&a, &a), 0); // identity
        // triangle inequality
        let dac = char_edit_distance(&a, &c);
        let dcb = char_edit_distance(&c, &b);
        prop_assert!(dab <= dac + dcb);
    }

    #[test]
    fn sym_myers_matches_generic_dp(a in prop::collection::vec(0u32..12, 0..90),
                                    b in prop::collection::vec(0u32..12, 0..90)) {
        let sa: Vec<Sym> = a.iter().map(|&x| Sym(x)).collect();
        let sb: Vec<Sym> = b.iter().map(|&x| Sym(x)).collect();
        let mut sm = SymMyers::new();
        prop_assert_eq!(sm.distance(&sa, &sb), edit_distance(&sa, &sb));
        // Scratch reuse: the same instance re-queried (swapped order) must
        // agree too — symbol distance is symmetric.
        prop_assert_eq!(sm.distance(&sb, &sa), edit_distance(&sa, &sb));
    }

    #[test]
    fn sym_myers_blocked_matches_generic_dp(a in prop::collection::vec(0u32..6, 65..160),
                                            b in prop::collection::vec(0u32..6, 0..200)) {
        // Patterns beyond 64 symbols exercise the blocked (multi-word)
        // variant, including block-boundary carries.
        let sa: Vec<Sym> = a.iter().map(|&x| Sym(x)).collect();
        let sb: Vec<Sym> = b.iter().map(|&x| Sym(x)).collect();
        prop_assert_eq!(SymMyers::new().distance(&sa, &sb), edit_distance(&sa, &sb));
    }

    #[test]
    fn word_distance_matches_dp_on_non_ascii(a in "[αβγδ日本語 ]{0,60}", b in "[αβγδ日本語 ]{0,60}") {
        // The word path is symbol-level, so non-ASCII scripts take the same
        // bit-parallel kernel; cross-check against interned generic DP.
        let mut interner = Interner::new();
        let sa = interner.intern_words(&a);
        let sb = interner.intern_words(&b);
        prop_assert_eq!(word_edit_distance(&a, &b), edit_distance(&sa, &sb));
        prop_assert_eq!(WordDistance::new().distance(&a, &b), edit_distance(&sa, &sb));
    }

    #[test]
    fn word_distance_matches_dp_on_long_texts(a in "[ab ]{130,400}", b in "[abc ]{0,400}") {
        // Long word sequences (patterns > 64 words) through the public
        // string API, cross-checked against the interned generic DP.
        let mut interner = Interner::new();
        let sa = interner.intern_words(&a);
        let sb = interner.intern_words(&b);
        prop_assert_eq!(word_edit_distance(&a, &b), edit_distance(&sa, &sb));
    }

    #[test]
    fn fingerprinted_counter_matches_vec_keyed(
        seqs in prop::collection::vec(prop::collection::vec(0u32..8, 0..24), 0..12),
        max_order in 1usize..5,
        probe in prop::collection::vec(0u32..9, 0..6),
    ) {
        let mut packed = NgramCounter::new(max_order);
        let mut oracle = VecKeyedCounter::new(max_order);
        for s in &seqs {
            packed.observe(s);
            oracle.observe(s);
        }
        for order in 0..=max_order + 1 {
            prop_assert_eq!(packed.total(order), oracle.totals.get(order.wrapping_sub(1)).copied().unwrap_or(0));
            if (1..=max_order).contains(&order) {
                prop_assert_eq!(packed.distinct(order), oracle.counts[order - 1].len());
            }
        }
        // Every observed gram and a random probe agree on count and
        // continuations (probe may contain the unseen symbol 8).
        for s in &seqs {
            for order in 1..=max_order {
                for w in ngrams(s, order) {
                    prop_assert_eq!(packed.count(w), oracle.count(w));
                    prop_assert_eq!(packed.continuations(w), oracle.continuations(w));
                }
            }
        }
        prop_assert_eq!(packed.count(&probe), oracle.count(&probe));
        prop_assert_eq!(packed.continuations(&probe), oracle.continuations(&probe));
    }

    #[test]
    fn word_distance_bounded_by_token_counts(a in "[a-z ]{0,60}", b in "[a-z ]{0,60}") {
        let d = word_edit_distance(&a, &b);
        let na = words(&a).len();
        let nb = words(&b).len();
        prop_assert!(d <= na.max(nb));
        prop_assert!(d >= na.abs_diff(nb));
    }

    #[test]
    fn diff_script_covers_both_inputs(a in prop::collection::vec(0u8..4, 0..20),
                                      b in prop::collection::vec(0u8..4, 0..20)) {
        let s = diff_tokens(&a, &b);
        let (mut ai, mut bj) = (0usize, 0usize);
        for op in &s.ops {
            match op {
                EditOp::Equal { a_range, b_range } => {
                    prop_assert_eq!(a_range.len(), b_range.len());
                    prop_assert_eq!(&a[a_range.clone()], &b[b_range.clone()]);
                    ai = a_range.end; bj = b_range.end;
                }
                EditOp::Replace { a_range, b_range } => { ai = a_range.end; bj = b_range.end; }
                EditOp::Delete { a_range } => { ai = a_range.end; }
                EditOp::Insert { b_range } => { bj = b_range.end; }
            }
        }
        prop_assert_eq!(ai, a.len());
        prop_assert_eq!(bj, b.len());
    }

    #[test]
    fn diff_change_weight_upper_bounds_distance(a in prop::collection::vec(0u8..3, 0..15),
                                                b in prop::collection::vec(0u8..3, 0..15)) {
        let s = diff_tokens(&a, &b);
        prop_assert!(s.change_weight() >= edit_distance(&a, &b));
        if a == b {
            prop_assert!(s.is_identity());
        }
    }

    #[test]
    fn tokenize_spans_are_ordered_and_in_bounds(s in "\\PC{0,80}") {
        let toks = tokenize(&s);
        let mut last_end = 0usize;
        for t in &toks {
            prop_assert!(t.span.start >= last_end);
            prop_assert!(t.span.end <= s.len());
            prop_assert!(t.span.start < t.span.end);
            prop_assert!(s.is_char_boundary(t.span.start));
            prop_assert!(s.is_char_boundary(t.span.end));
            last_end = t.span.end;
        }
    }

    #[test]
    fn normalize_layout_idempotent(s in "[a-z ,.!?]{0,60}") {
        let once = normalize_layout(&s);
        prop_assert_eq!(normalize_layout(&once), once);
    }
}
