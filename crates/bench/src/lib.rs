//! # coachlm-bench
//!
//! The benchmark harness: regenerates **every table and figure** of the
//! paper's evaluation. One [`world::ExperimentWorld`] holds the full
//! pipeline state (dataset → filter → expert revision → CoachLM → revised
//! dataset → tuned students), built once and shared by all experiments.
//!
//! Run the reproduction with:
//!
//! ```text
//! cargo run -p coachlm-bench --release --bin repro -- all
//! cargo run -p coachlm-bench --release --bin repro -- table9 --scale quick
//! ```
//!
//! Experiment ids: `table3 table4 table7 fig4 table8 table9 table10 fig5
//! table11 deploy` (see DESIGN.md §4 for the paper mapping). Criterion
//! micro-benchmarks live under `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod format;
pub mod world;

pub use world::{ExperimentWorld, Scale};
