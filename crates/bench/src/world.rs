//! The shared experiment world: the paper's full pipeline, built once.

use coachlm_core::baselines::{build_alpagasus, build_cleaned, build_human_merged};
use coachlm_core::coach::{CoachConfig, CoachLm};
use coachlm_core::infer::{revise_dataset, RevisedDataset};
use coachlm_data::generator::{generate, GeneratorConfig};
use coachlm_data::pair::Dataset;
use coachlm_data::testsets::{TestSet, TestSetKind};
use coachlm_expert::filter::{preliminary_filter, FilterOutcome};
use coachlm_expert::pool::ExpertPool;
use coachlm_expert::revision::{ExpertReviser, RevisionRecord};
use coachlm_judge::chatgpt::ChatGptRater;
use coachlm_runtime::ExecutorConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale: 52 002 pairs, 6 000 sampled for expert revision.
    Full,
    /// Development scale: 6 000 pairs, 1 500 sampled. Same distributions.
    Quick,
}

impl Scale {
    /// Parses `full`/`quick`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "quick" => Some(Scale::Quick),
            _ => None,
        }
    }

    /// Dataset size.
    pub fn dataset_size(self) -> usize {
        match self {
            Scale::Full => 52_002,
            Scale::Quick => 6_000,
        }
    }

    /// Expert-revision sample size (paper: 6k of 52k).
    pub fn sample_size(self) -> usize {
        match self {
            Scale::Full => 6_000,
            Scale::Quick => 1_500,
        }
    }

    /// Raw batch size for the §IV-A deployment experiment (paper: ~40k).
    pub fn deploy_size(self) -> usize {
        match self {
            Scale::Full => 40_000,
            Scale::Quick => 4_000,
        }
    }
}

/// The built world.
pub struct ExperimentWorld {
    /// Scale used.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// The synthetic ALPACA52K.
    pub alpaca: Dataset,
    /// Ids of the expert-revision sample (6k of 52k).
    pub sample_ids: Vec<u64>,
    /// Preliminary-filter outcome on the sample (Table III).
    pub filter: FilterOutcome,
    /// The expert revision dataset `R` (Table IV).
    pub records: Vec<RevisionRecord>,
    /// The main CoachLM (ChatGLM2, α = 0.3).
    pub coach: CoachLm,
    /// The CoachLM-revised dataset with post-processing stats.
    pub revised: RevisedDataset,
    /// Alpaca-cleaned dataset.
    pub cleaned: Dataset,
    /// AlpaGasus-filtered dataset.
    pub alpagasus: Dataset,
    /// Alpaca-human dataset (all records merged).
    pub human: Dataset,
    /// The four test sets.
    pub test_sets: Vec<TestSet>,
    /// Worker threads for dataset-scale revision.
    pub threads: usize,
}

impl ExperimentWorld {
    /// Builds the world (deterministic for a given scale + seed).
    pub fn build(scale: Scale, seed: u64) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);

        // 1. The dataset.
        let (alpaca, _) = generate(&GeneratorConfig {
            size: scale.dataset_size(),
            seed,
            name: "ALPACA52K-synth".to_string(),
            ..GeneratorConfig::default()
        });

        // 2. Sample for expert revision (§II-E: "randomly selected subset
        //    of 6k instruction pairs").
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A3);
        let mut ids: Vec<u64> = (0..alpaca.len() as u64).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        let mut sample_ids: Vec<u64> = ids.into_iter().take(scale.sample_size()).collect();
        sample_ids.sort_unstable();
        let mut sample = Dataset::new("sample-6k");
        sample.pairs = sample_ids
            .iter()
            .map(|&id| alpaca.get(id).expect("dense ids").clone())
            .collect();

        // 3. Preliminary filter (Table III).
        let filter = preliminary_filter(&sample, seed ^ 0xF1);

        // 4. Expert revision (Table IV) → R.
        let reviser = ExpertReviser::new(seed ^ 0xE2);
        let records = reviser.revise_dataset(&ExpertPool::paper_pool(), &sample, &filter.kept);

        // 5. CoachLM (main config: ChatGLM2, α = 0.3).
        let coach = CoachLm::train(CoachConfig::default(), &records);

        // 6. The revised dataset (Eq. 2 + §III-B1).
        let revised = revise_dataset(
            &coach,
            &alpaca,
            &ExecutorConfig::new(seed ^ 0xD3).threads(threads),
        );

        // 7. Baseline datasets.
        let cleaned = build_cleaned(&alpaca);
        let alpagasus = build_alpagasus(&alpaca, &ChatGptRater::new(seed ^ 0xC4), 4.5);
        let refs: Vec<&RevisionRecord> = records.iter().collect();
        let human = build_human_merged(&alpaca, &refs, usize::MAX);

        // 8. Test sets.
        let test_sets = TestSetKind::ALL
            .iter()
            .map(|&k| TestSet::build(k, seed ^ 0xB5))
            .collect();

        Self {
            scale,
            seed,
            alpaca,
            sample_ids,
            filter,
            records,
            coach,
            revised,
            cleaned,
            alpagasus,
            human,
            test_sets,
            threads,
        }
    }

    /// Executor config for dataset-scale chains, salted per experiment.
    pub fn exec_config(&self, salt: u64) -> ExecutorConfig {
        ExecutorConfig::new(self.seed ^ salt).threads(self.threads)
    }

    /// The sample dataset (reconstructed view over `sample_ids`).
    pub fn sample(&self) -> Dataset {
        let mut d = Dataset::new("sample");
        d.pairs = self
            .sample_ids
            .iter()
            .map(|&id| self.alpaca.get(id).expect("dense ids").clone())
            .collect();
        d
    }

    /// Test set by kind.
    pub fn test_set(&self, kind: TestSetKind) -> &TestSet {
        self.test_sets
            .iter()
            .find(|t| t.kind == kind)
            .expect("all kinds built")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_world_builds_coherently() {
        let w = ExperimentWorld::build(Scale::Quick, 0xC0AC);
        assert_eq!(w.alpaca.len(), 6000);
        assert_eq!(w.sample_ids.len(), 1500);
        assert_eq!(w.revised.dataset.len(), w.alpaca.len());
        assert!(!w.records.is_empty());
        assert!(w.coach.trained_on() > 0);
        assert_eq!(w.test_sets.len(), 4);
        // Sample ids are unique and in range.
        let set: std::collections::HashSet<u64> = w.sample_ids.iter().copied().collect();
        assert_eq!(set.len(), 1500);
        assert!(w
            .sample_ids
            .iter()
            .all(|&id| (id as usize) < w.alpaca.len()));
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("medium"), None);
    }
}
