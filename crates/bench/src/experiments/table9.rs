//! Table IX — win rates of all models on the four test sets.

use super::Experiment;
use crate::format::{pct, Table};
use crate::world::ExperimentWorld;
use coachlm_core::baselines::{build_roster, ModelGroup, RosterDatasets, RosterEntry};
use coachlm_core::evaluate::evaluate;
use coachlm_judge::pandalm::PandaLm;
use serde_json::json;

/// Table IX experiment.
pub struct Table9;

/// Builds the full model roster for a world.
pub fn roster(world: &ExperimentWorld) -> Vec<RosterEntry> {
    build_roster(
        &RosterDatasets {
            original: &world.alpaca,
            cleaned: &world.cleaned,
            alpagasus: &world.alpagasus,
            human: &world.human,
            coachlm: &world.revised.dataset,
        },
        world.seed ^ 0x909,
    )
}

impl Experiment for Table9 {
    fn id(&self) -> &'static str {
        "table9"
    }

    fn title(&self) -> &'static str {
        "Table IX: win rates vs reference responses on four test sets (PandaLM-judged)"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        let judge = PandaLm::new(world.seed ^ 0x9A);
        let roster = roster(world);
        let mut header: Vec<String> = vec!["Model".into(), "Size".into(), "Group".into()];
        for ts in &world.test_sets {
            for metric in ["WR1", "WR2", "QS"] {
                header.push(format!("{} {metric}", ts.kind.name()));
            }
        }
        let mut table = Table::new(header);
        let mut json_rows = Vec::new();
        for entry in &roster {
            let mut cells: Vec<String> = vec![
                entry.name.to_string(),
                entry.size.to_string(),
                format!("{:?}", entry.group),
            ];
            let mut per_set = Vec::new();
            for ts in &world.test_sets {
                let r = evaluate(&entry.model, ts, &judge);
                cells.push(pct(r.rates.wr1));
                cells.push(pct(r.rates.wr2));
                cells.push(pct(r.rates.qs));
                per_set.push(json!({
                    "test_set": ts.kind.name(),
                    "wr1": r.rates.wr1, "wr2": r.rates.wr2, "qs": r.rates.qs,
                    "win": r.counts.win, "tie": r.counts.tie, "lose": r.counts.lose,
                }));
            }
            table.row(cells);
            json_rows.push(json!({
                "model": entry.name,
                "size": entry.size,
                "group": format!("{:?}", entry.group),
                "type": entry.tune_type.label(),
                "results": per_set,
            }));
        }

        // Headline checks (printed for the reader).
        let wr1 = |name: &str, set: usize| -> f64 {
            json_rows
                .iter()
                .find(|r| r["model"] == name)
                .and_then(|r| r["results"][set]["wr1"].as_f64())
                .unwrap_or(0.0)
        };
        let headline = format!(
            "Alpaca-CoachLM vs Alpaca on CoachLM150: {} vs {} (paper: 67.7% vs 48.0%)\n\
             Alpaca-human vs Alpaca on CoachLM150:   {} vs {} (paper: 52.0% vs 48.0%)",
            pct(wr1("Alpaca-CoachLM", 0)),
            pct(wr1("Alpaca", 0)),
            pct(wr1("Alpaca-human", 0)),
            pct(wr1("Alpaca", 0)),
        );

        let report = format!("{}\n{}\n{}", self.title(), headline, table.render());
        let n_stronger = roster
            .iter()
            .filter(|r| r.group == ModelGroup::Stronger)
            .count();
        let json = json!({
            "judge": "PandaLM",
            "stronger_models": n_stronger,
            "rows": json_rows,
        });
        (report, json)
    }
}
