//! Fig 5 — win rates vs the human input ratio α.
//!
//! (a) Alpaca-CoachLM: CoachLM retrained at each α, the dataset re-revised,
//!     the student retuned, and evaluated on CoachLM150 by both PandaLM and
//!     GPT-4 (the paper's two judges). The paper observes a peak at α = 0.3
//!     and at most ~10 % degradation toward α = 1.
//! (b) Alpaca-human: the top-α (by edit distance) expert revisions merged
//!     into the training set; the win rate rises steadily. A least-squares
//!     line (paper: R² = 0.9799, slope 3.07 %/k) extrapolates the crossover
//!     with Alpaca-CoachLM.

use super::Experiment;
use crate::format::{f2, pct, Table};
use crate::world::ExperimentWorld;
use coachlm_core::alpha::select_alpha;
use coachlm_core::baselines::build_human_merged;
use coachlm_core::coach::{CoachConfig, CoachLm};
use coachlm_core::evaluate::evaluate;
use coachlm_core::infer::revise_dataset;
use coachlm_core::student::{tune_student, SkillParams};
use coachlm_data::testsets::TestSetKind;
use coachlm_judge::gpt4::Gpt4Judge;
use coachlm_judge::pandalm::PandaLm;
use coachlm_judge::stats::linear_fit;
use serde_json::json;

/// Fig 5 experiment.
pub struct Fig5;

/// The α grid.
pub const ALPHAS: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

impl Experiment for Fig5 {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "Fig 5: win rate vs human input ratio alpha (CoachLM150)"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        let ts = world.test_set(TestSetKind::CoachLm150);
        let pandalm = PandaLm::new(world.seed ^ 0x5A);
        let gpt4 = Gpt4Judge::new(world.seed ^ 0x5B);

        // (a) Alpaca-CoachLM sweep.
        let mut coach_rows = Vec::new();
        let mut table_a = Table::new(["alpha", "C_a size", "PandaLM", "GPT-4"]);
        for alpha in ALPHAS {
            let coach = CoachLm::train(
                CoachConfig {
                    alpha,
                    ..CoachConfig::default()
                },
                &world.records,
            );
            let revised = revise_dataset(&coach, &world.alpaca, &world.exec_config(0x5C));
            let student = tune_student(
                format!("Alpaca-CoachLM(a={alpha:.1})"),
                &revised.dataset,
                SkillParams::default(),
                world.seed,
            );
            let p = evaluate(&student, ts, &pandalm).rates.mean();
            let g = evaluate(&student, ts, &gpt4).rates.mean();
            table_a.row([
                format!("{alpha:.1}"),
                coach.trained_on().to_string(),
                pct(p),
                pct(g),
            ]);
            coach_rows.push(json!({
                "alpha": alpha,
                "trained_on": coach.trained_on(),
                "pandalm": p,
                "gpt4": g,
            }));
        }
        let best_alpha = coach_rows
            .iter()
            .max_by(|a, b| {
                a["pandalm"]
                    .as_f64()
                    .unwrap()
                    .total_cmp(&b["pandalm"].as_f64().unwrap())
            })
            .and_then(|r| r["alpha"].as_f64())
            .unwrap_or(f64::NAN);

        // (b) Alpaca-human sweep: merge the top-α records.
        let ranked = select_alpha(&world.records, 1.0); // full ranking, desc
        let mut human_rows = Vec::new();
        let mut table_b = Table::new(["alpha", "merged", "PandaLM", "GPT-4"]);
        let mut fit_points: Vec<(f64, f64)> = Vec::new();
        for alpha in ALPHAS {
            let take = ((ranked.len() as f64) * alpha).round() as usize;
            let merged = build_human_merged(&world.alpaca, &ranked, take);
            let student = tune_student(
                format!("Alpaca-human(a={alpha:.1})"),
                &merged,
                SkillParams::default(),
                world.seed,
            );
            let p = evaluate(&student, ts, &pandalm).rates.mean();
            let g = evaluate(&student, ts, &gpt4).rates.mean();
            table_b.row([format!("{alpha:.1}"), take.to_string(), pct(p), pct(g)]);
            fit_points.push((take as f64 / 1000.0, p * 100.0));
            human_rows.push(json!({"alpha": alpha, "merged": take, "pandalm": p, "gpt4": g}));
        }
        let fit = linear_fit(&fit_points);

        // Crossover extrapolation (paper: ≈7.3k revised samples).
        let coach_peak = coach_rows
            .iter()
            .map(|r| r["pandalm"].as_f64().unwrap())
            .fold(f64::MIN, f64::max)
            * 100.0;
        let crossover_k = fit.and_then(|f| f.solve_for(coach_peak));

        let mut report = format!(
            "{}\n(a) Alpaca-CoachLM (paper: peak at alpha=0.3):\n{}\nmeasured peak at alpha={best_alpha:.1}\n\n\
             (b) Alpaca-human (paper: linear, R^2=0.9799, 3.07%/k, crossover ~7.3k):\n{}",
            self.title(),
            table_a.render(),
            table_b.render()
        );
        if let Some(f) = fit {
            report.push_str(&format!(
                "linear fit: {} %/k revised samples, R^2 = {}\n",
                f2(f.slope),
                f2(f.r2)
            ));
        }
        if let Some(k) = crossover_k {
            report.push_str(&format!(
                "extrapolated crossover with Alpaca-CoachLM peak: {:.1}k human-revised samples\n",
                k
            ));
        }

        let json = json!({
            "coachlm_sweep": coach_rows,
            "human_sweep": human_rows,
            "best_alpha": best_alpha,
            "fit": fit.map(|f| json!({"slope_pct_per_k": f.slope, "r2": f.r2})),
            "crossover_k": crossover_k,
            "paper": {"best_alpha": 0.3, "slope_pct_per_k": 3.07, "r2": 0.9799, "crossover_k": 7.3},
        });
        (report, json)
    }
}
