//! Table XI — CoachLM backbone ablation (α fixed at 1, CoachLM150).

use super::Experiment;
use crate::format::{pct, Table};
use crate::world::ExperimentWorld;
use coachlm_core::coach::{CoachConfig, CoachLm};
use coachlm_core::evaluate::evaluate;
use coachlm_core::infer::revise_dataset;
use coachlm_core::student::{tune_student, SkillParams};
use coachlm_data::testsets::TestSetKind;
use coachlm_judge::pandalm::PandaLm;
use coachlm_lm::backbone::BackboneKind;
use serde_json::json;

/// Table XI experiment.
pub struct Table11;

/// Paper WR1 per row (CoachLM150, α = 1).
fn paper_wr1(name: &str) -> f64 {
    match name {
        "Alpaca" => 0.48,
        "LLaMA" => 0.493,
        "ChatGLM" => 0.54,
        "ChatGLM2" => 0.567,
        _ => f64::NAN,
    }
}

impl Experiment for Table11 {
    fn id(&self) -> &'static str {
        "table11"
    }

    fn title(&self) -> &'static str {
        "Table XI: Alpaca-CoachLM with varying backbone models (alpha = 1)"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        let ts = world.test_set(TestSetKind::CoachLm150);
        let judge = PandaLm::new(world.seed ^ 0x11A);
        let mut table = Table::new(["Model", "WR1", "WR2", "QS", "Paper WR1"]);
        let mut rows = Vec::new();

        // Baseline Alpaca row.
        let alpaca = tune_student("Alpaca", &world.alpaca, SkillParams::default(), world.seed);
        let r = evaluate(&alpaca, ts, &judge);
        table.row([
            "Alpaca".to_string(),
            pct(r.rates.wr1),
            pct(r.rates.wr2),
            pct(r.rates.qs),
            pct(paper_wr1("Alpaca")),
        ]);
        rows.push(
            json!({"backbone": "none", "model": "Alpaca", "wr1": r.rates.wr1,
                         "wr2": r.rates.wr2, "qs": r.rates.qs, "paper_wr1": paper_wr1("Alpaca")}),
        );

        for kind in BackboneKind::ALL {
            let coach = CoachLm::train(
                CoachConfig {
                    backbone: kind,
                    alpha: 1.0,
                    ..CoachConfig::default()
                },
                &world.records,
            );
            let revised = revise_dataset(&coach, &world.alpaca, &world.exec_config(0x11B));
            let student = tune_student(
                format!("Alpaca-CoachLM({})", kind.name()),
                &revised.dataset,
                SkillParams::default(),
                world.seed,
            );
            let r = evaluate(&student, ts, &judge);
            table.row([
                format!("Alpaca-CoachLM ({})", kind.name()),
                pct(r.rates.wr1),
                pct(r.rates.wr2),
                pct(r.rates.qs),
                pct(paper_wr1(kind.name())),
            ]);
            rows.push(
                json!({"backbone": kind.name(), "wr1": r.rates.wr1, "wr2": r.rates.wr2,
                             "qs": r.rates.qs, "paper_wr1": paper_wr1(kind.name())}),
            );
        }

        let report = format!("{}\n{}", self.title(), table.render());
        (report, json!({"rows": rows}))
    }
}
