//! Table X — human scores of Alpaca-CoachLM vs Alpaca responses.

use super::Experiment;
use crate::format::{f1, Table};
use crate::world::ExperimentWorld;
use coachlm_core::student::{tune_student, SkillParams};
use coachlm_data::testsets::TestSetKind;
use coachlm_judge::human::{HumanPanel, PanelAverages};
use serde_json::json;

/// Table X experiment.
pub struct Table10;

impl Experiment for Table10 {
    fn id(&self) -> &'static str {
        "table10"
    }

    fn title(&self) -> &'static str {
        "Table X: human evaluation of Alpaca vs Alpaca-CoachLM on CoachLM150"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        let panel = HumanPanel::group_c(world.seed ^ 0x10A);
        let ts = world.test_set(TestSetKind::CoachLm150);
        let alpaca = tune_student("Alpaca", &world.alpaca, SkillParams::default(), world.seed);
        let coachlm = tune_student(
            "Alpaca-CoachLM",
            &world.revised.dataset,
            SkillParams::default(),
            world.seed,
        );

        let mut a_avg = PanelAverages::default();
        let mut c_avg = PanelAverages::default();
        for item in &ts.items {
            a_avg.add(&panel.rate_response(item.id, &item.instruction, &alpaca.respond(item)));
            c_avg.add(&panel.rate_response(item.id, &item.instruction, &coachlm.respond(item)));
        }
        let a_avg = a_avg.finish();
        let c_avg = c_avg.finish();

        let mut table = Table::new(["Model", "R1", "R2", "R3", "Avg"]);
        for (name, s) in [("Alpaca", &a_avg), ("Alpaca-CoachLM", &c_avg)] {
            table.row([
                name.to_string(),
                f1(s.by_reviewer[0]),
                f1(s.by_reviewer[1]),
                f1(s.by_reviewer[2]),
                f1(s.avg),
            ]);
        }
        table.row(["Paper Alpaca", "56.6", "58.2", "60.9", "58.6"]);
        table.row(["Paper Alpaca-CoachLM", "-", "-", "-", "64.3"]);

        let report = format!("{}\n{}", self.title(), table.render());
        let json = json!({
            "alpaca": a_avg,
            "alpaca_coachlm": c_avg,
            "paper": {"alpaca_avg": 58.6, "alpaca_coachlm_avg": 64.3},
        });
        (report, json)
    }
}
