//! Table VIII — human evaluation of the revised dataset's quality.

use super::Experiment;
use crate::format::{f1, Table};
use crate::world::ExperimentWorld;
use coachlm_judge::human::{HumanPanel, PanelAverages};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

/// Table VIII experiment.
pub struct Table8;

impl Experiment for Table8 {
    fn id(&self) -> &'static str {
        "table8"
    }

    fn title(&self) -> &'static str {
        "Table VIII: human scores of 150 sampled pairs, original vs CoachLM-revised"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        let panel = HumanPanel::group_c(world.seed ^ 0x8A);
        let mut rng = StdRng::seed_from_u64(world.seed ^ 0x150);

        // 150 random pairs from the revised dataset (with their originals).
        let mut ids: Vec<u64> = (0..world.alpaca.len() as u64).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        let sample: Vec<u64> = ids.into_iter().take(150).collect();

        let mut orig_resp = PanelAverages::default();
        let mut rev_resp = PanelAverages::default();
        let mut sub_orig_instr = PanelAverages::default();
        let mut sub_rev_instr = PanelAverages::default();
        let mut sub_orig_resp = PanelAverages::default();
        let mut sub_rev_resp = PanelAverages::default();
        let mut modified_instructions = 0usize;

        for &id in &sample {
            let o = world.alpaca.get(id).expect("dense");
            let r = world.revised.dataset.get(id).expect("dense");
            orig_resp.add(&panel.rate_response(id, &o.instruction, &o.response));
            rev_resp.add(&panel.rate_response(id, &r.instruction, &r.response));
            if o.instruction != r.instruction {
                modified_instructions += 1;
                sub_orig_instr.add(&panel.rate_instruction(id, &o.instruction));
                sub_rev_instr.add(&panel.rate_instruction(id, &r.instruction));
                sub_orig_resp.add(&panel.rate_response(id, &o.instruction, &o.response));
                sub_rev_resp.add(&panel.rate_response(id, &r.instruction, &r.response));
            }
        }
        let orig_resp = orig_resp.finish();
        let rev_resp = rev_resp.finish();
        let sub_orig_instr = sub_orig_instr.finish();
        let sub_rev_instr = sub_rev_instr.finish();
        let sub_orig_resp = sub_orig_resp.finish();
        let sub_rev_resp = sub_rev_resp.finish();

        let mut table = Table::new(["Dataset", "R1", "R2", "R3", "Avg"]);
        let mut push = |label: &str, a: &PanelAverages| {
            table.row([
                label.to_string(),
                f1(a.by_reviewer[0]),
                f1(a.by_reviewer[1]),
                f1(a.by_reviewer[2]),
                f1(a.avg),
            ]);
        };
        push("150 sampled, RESPONSE: original", &orig_resp);
        push("150 sampled, RESPONSE: revised", &rev_resp);
        push(
            "instr-modified subset, INSTRUCTION: original",
            &sub_orig_instr,
        );
        push(
            "instr-modified subset, INSTRUCTION: revised",
            &sub_rev_instr,
        );
        push("instr-modified subset, RESPONSE: original", &sub_orig_resp);
        push("instr-modified subset, RESPONSE: revised", &sub_rev_resp);

        let report = format!(
            "{}\ninstruction-modified subset: {modified_instructions} of 150 (paper: 18)\n\
             paper responses: 71.2 -> 75.4 avg; paper subset responses: 68.8 -> 77.6 avg\n{}",
            self.title(),
            table.render()
        );
        let json = json!({
            "sampled": 150,
            "modified_instructions": modified_instructions,
            "responses": {"original": orig_resp, "revised": rev_resp},
            "subset_instructions": {"original": sub_orig_instr, "revised": sub_rev_instr},
            "subset_responses": {"original": sub_orig_resp, "revised": sub_rev_resp},
            "paper": {
                "responses": {"original_avg": 71.2, "revised_avg": 75.4},
                "subset_instructions": {"original_avg": 76.2, "revised_avg": 79.0},
                "subset_responses": {"original_avg": 68.8, "revised_avg": 77.6},
            },
        });
        (report, json)
    }
}
