//! Table IV — statistics of expert revisions.

use super::Experiment;
use crate::format::{pct, Table};
use crate::world::ExperimentWorld;
use coachlm_expert::revision::RevisionKind;
use serde_json::json;

/// Table IV experiment.
pub struct Table4;

/// Paper ratios per revision kind.
fn paper_ratio(kind: RevisionKind) -> f64 {
    match kind {
        RevisionKind::AdjustInstruction => 0.681,
        RevisionKind::RewriteInstruction => 0.249,
        RevisionKind::DiversifyInstruction => 0.070,
        RevisionKind::DiversifyResponse => 0.437,
        RevisionKind::RewriteResponse => 0.245,
        RevisionKind::AdjustResponse => 0.233,
        RevisionKind::CorrectResponse => 0.067,
        RevisionKind::OtherResponse => 0.019,
    }
}

fn label(kind: RevisionKind) -> &'static str {
    match kind {
        RevisionKind::AdjustInstruction => "Adjust language/layout",
        RevisionKind::RewriteInstruction => "Rewrite infeasible/ambiguous",
        RevisionKind::DiversifyInstruction => "Diversify context",
        RevisionKind::DiversifyResponse => "Diversify/expand reasoning",
        RevisionKind::RewriteResponse => "Rewrite fluency/relevance/logic",
        RevisionKind::AdjustResponse => "Adjust layout/tone",
        RevisionKind::CorrectResponse => "Correct facts/calculations",
        RevisionKind::OtherResponse => "Safety & other",
    }
}

impl Experiment for Table4 {
    fn id(&self) -> &'static str {
        "table4"
    }

    fn title(&self) -> &'static str {
        "Table IV: distribution of expert revisions"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        let records = &world.records;
        let instr_revised: Vec<_> = records.iter().filter(|r| r.instruction_revised).collect();

        let instr_kinds = [
            RevisionKind::AdjustInstruction,
            RevisionKind::RewriteInstruction,
            RevisionKind::DiversifyInstruction,
        ];
        let resp_kinds = [
            RevisionKind::DiversifyResponse,
            RevisionKind::RewriteResponse,
            RevisionKind::AdjustResponse,
            RevisionKind::CorrectResponse,
            RevisionKind::OtherResponse,
        ];

        let mut table = Table::new(["Revision", "Measured", "Paper"]);
        let mut json_rows = Vec::new();
        table.row([
            format!("-- {} revised INSTRUCTIONS --", instr_revised.len()),
            String::new(),
            String::new(),
        ]);
        for kind in instr_kinds {
            let c = instr_revised
                .iter()
                .filter(|r| r.instruction_kind == Some(kind))
                .count();
            let m = c as f64 / instr_revised.len().max(1) as f64;
            table.row([label(kind), &pct(m), &pct(paper_ratio(kind))]);
            json_rows.push(json!({"kind": label(kind), "measured": m, "paper": paper_ratio(kind)}));
        }
        table.row([
            format!("-- {} revised RESPONSES --", records.len()),
            String::new(),
            String::new(),
        ]);
        for kind in resp_kinds {
            let c = records
                .iter()
                .filter(|r| r.response_kind == Some(kind))
                .count();
            let m = c as f64 / records.len().max(1) as f64;
            table.row([label(kind), &pct(m), &pct(paper_ratio(kind))]);
            json_rows.push(json!({"kind": label(kind), "measured": m, "paper": paper_ratio(kind)}));
        }

        let kept = world.filter.kept.len();
        let revised_share = records.len() as f64 / kept.max(1) as f64;
        let instr_share = instr_revised.len() as f64 / records.len().max(1) as f64;
        let report = format!(
            "{}\nrevised {} of {kept} kept pairs ({}); paper: 2301 of 4912 (46.8%)\n\
             instruction-side revisions: {} ({}); paper: 1079 of 2301 (46.9%)\n{}",
            self.title(),
            records.len(),
            pct(revised_share),
            instr_revised.len(),
            pct(instr_share),
            table.render()
        );
        let json = json!({
            "revised": records.len(),
            "kept": kept,
            "revised_share": revised_share,
            "paper_revised_share": 2301.0 / 4912.0,
            "instruction_revised": instr_revised.len(),
            "instruction_share": instr_share,
            "rows": json_rows,
        });
        (report, json)
    }
}
