//! One module per paper table/figure (see DESIGN.md §4 for the mapping).

pub mod deploy;
pub mod fig4;
pub mod fig5;
pub mod table10;
pub mod table11;
pub mod table3;
pub mod table4;
pub mod table7;
pub mod table8;
pub mod table9;
pub mod tournament;

use crate::world::ExperimentWorld;

/// A runnable experiment.
pub trait Experiment {
    /// Stable id (`table3`, `fig5`, …).
    fn id(&self) -> &'static str;
    /// What this reproduces.
    fn title(&self) -> &'static str;
    /// Runs it: returns the human-readable report and the JSON record.
    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value);
}

/// All experiments in paper order.
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(table3::Table3),
        Box::new(table4::Table4),
        Box::new(table7::Table7),
        Box::new(fig4::Fig4),
        Box::new(table8::Table8),
        Box::new(table9::Table9),
        Box::new(table10::Table10),
        Box::new(fig5::Fig5),
        Box::new(table11::Table11),
        Box::new(deploy::Deploy),
        Box::new(tournament::Tournament),
    ]
}

/// Looks an experiment up by id.
pub fn by_id(id: &str) -> Option<Box<dyn Experiment>> {
    all().into_iter().find(|e| e.id() == id)
}
