//! Table VII — statistics of the CoachLM-revised dataset.

use super::Experiment;
use crate::format::{f1, Table};
use crate::world::ExperimentWorld;
use coachlm_data::stats::{basic_stats, compare_stats};
use serde_json::json;

/// Table VII experiment.
pub struct Table7;

impl Experiment for Table7 {
    fn id(&self) -> &'static str {
        "table7"
    }

    fn title(&self) -> &'static str {
        "Table VII: average length and word-level edit distance, original vs CoachLM-revised"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        let orig = basic_stats(&world.alpaca);
        let rev = compare_stats(&world.alpaca, &world.revised.dataset);

        let mut table = Table::new([
            "Dataset",
            "Instr words",
            "Instr edit",
            "Resp words",
            "Resp edit",
        ]);
        table.row([
            "Original",
            &f1(orig.avg_instruction_words),
            "-",
            &f1(orig.avg_response_words),
            "-",
        ]);
        table.row([
            "CoachLM-revised",
            &f1(rev.avg_instruction_words),
            &f1(rev.avg_instruction_edit.unwrap_or(0.0)),
            &f1(rev.avg_response_words),
            &f1(rev.avg_response_edit.unwrap_or(0.0)),
        ]);
        table.row(["Paper original", "17.7", "-", "43.9", "-"]);
        table.row(["Paper revised", "16.8", "3.4", "143.1", "128.7"]);

        let report = format!(
            "{}\ninstructions changed: {} ({} of {}); responses changed: {}\n\
             invalid outputs replaced: {} ({:.2}%); leakage-skipped: {} ({:.2}%)\n{}",
            self.title(),
            rev.instructions_changed.unwrap_or(0),
            rev.instructions_changed.unwrap_or(0),
            world.alpaca.len(),
            rev.responses_changed.unwrap_or(0),
            world.revised.replaced_invalid,
            100.0 * world.revised.replaced_invalid as f64 / world.alpaca.len() as f64,
            world.revised.leakage_skipped,
            100.0 * world.revised.leakage_skipped as f64 / world.alpaca.len() as f64,
            table.render()
        );
        let json = json!({
            "original": orig,
            "revised": rev,
            "replaced_invalid": world.revised.replaced_invalid,
            "leakage_skipped": world.revised.leakage_skipped,
            "paper": {
                "original": {"instr_words": 17.7, "resp_words": 43.9},
                "revised": {"instr_words": 16.8, "instr_edit": 3.4, "resp_words": 143.1, "resp_edit": 128.7},
            },
        });
        (report, json)
    }
}
