//! §IV-A — CoachLM in the production data management pipeline (Fig 6).

use super::Experiment;
use crate::format::{f1, f2, pct, Table};
use crate::world::ExperimentWorld;
use coachlm_core::pipeline::{
    compare_deployment, run_batch, run_batch_sharded, run_batch_supervised, run_stream,
    trained_coach, BatchJobSpec, CoachTrainSpec, PipelineReport,
};
use coachlm_data::generator::{generate, zipfian_duplicates, GeneratorConfig, ZipfianConfig};
use coachlm_data::pair::Dataset;
use coachlm_runtime::{
    BreakerPolicy, CachePolicy, ChaosPlan, ExecutorConfig, FaultPlan, Feed, KillMode,
    SuperviseOptions, WorkerKill,
};
use serde_json::json;
use std::time::{Duration, Instant};

/// Deployment experiment.
pub struct Deploy;

/// The latency-storm cell: every CoachRevise attempt suffers a spike far
/// past its 5 s deadline budget with this probability, modelling an
/// inference backend brown-out. An item only fails after all three
/// attempts time out, so the per-item failure rate is roughly the cube of
/// this; 0.8 keeps whole breaker windows above the trip threshold.
const STORM_LATENCY_RATE: f64 = 0.8;

/// The injected spike: double the revise stage's deadline budget, so every
/// struck attempt times out rather than merely running slow.
const STORM_SPIKE: Duration = Duration::from_secs(10);

/// The sustained-traffic cell: continuous arrivals at this multiple of the
/// service's modeled drain rate. Anything above 1.0 eventually fills the
/// admission backlog; the long-run shed share tends to
/// `1 - 1/SUSTAINED_OVERLOAD` once it does.
const SUSTAINED_OVERLOAD: f64 = 1.5;

/// Admission backlog capacity (pairs queued but not yet admitted) before
/// the front door starts shedding.
const SUSTAINED_BACKLOG: usize = 256;

/// The duplicate-traffic cell: Zipf exponent of the arriving user cases.
/// ~1.1 is web-like skew — a handful of head contents dominate.
const DEDUP_SKEW: f64 = 1.1;

/// Worker shards for the duplicate-traffic cell. Each shard models one
/// horizontal replica of the service (its own executor, journal, and
/// revision cache); content-hash routing keeps duplicate clusters on one
/// replica, so per-shard caches keep their full hit rate.
const DEDUP_SHARDS: usize = 8;

/// The shard-crash cell (PR 10): worker shards for the supervised run —
/// each a crash-contained child process of the repro binary.
const CRASH_SHARDS: usize = 4;

/// Item frames shard 0's worker emits before the chaos kill lands.
const CRASH_KILL_AFTER_FRAMES: u64 = 3;

/// Synthetic training pairs for the cell's self-contained coach. Worker
/// processes re-derive the coach from the job spec on every attempt
/// (including the post-crash restart), so training must stay cheap.
const CRASH_TRAIN_PAIRS: u32 = 400;

fn storm_breaker() -> BreakerPolicy {
    BreakerPolicy::new()
        .window(64)
        .trip_ratio(0.25)
        .min_failures(8)
        .cooldown_epochs(1)
        .probes(8)
}

impl Experiment for Deploy {
    fn id(&self) -> &'static str {
        "deploy"
    }

    fn title(&self) -> &'static str {
        "Section IV-A: data management pipeline efficiency with vs without CoachLM"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        // A fresh raw batch (the paper's ~40k production pairs) — user-case
        // data, not the ALPACA52K stand-in, so generate with a new seed.
        let (raw, _) = generate(&GeneratorConfig {
            size: world.scale.deploy_size(),
            seed: world.seed ^ 0xDE9107,
            name: "production-batch".to_string(),
            ..GeneratorConfig::default()
        });
        let cmp = compare_deployment(&world.coach, &raw, &world.exec_config(0xDE))
            .expect("deploy chain always includes the expert-annotate stage");

        // The overload cell: the same assisted batch under an inference
        // brown-out. Timeouts exhaust retries into quarantine until the
        // CoachRevise breaker trips; from then on pairs pass through
        // unrevised (degraded) instead of stalling the platform, and the
        // expert annotators absorb them as ordinary unrevised pairs.
        let storm_config = world
            .exec_config(0xDE)
            .fault_plan(
                FaultPlan::new(world.seed ^ 0x5702).latency(STORM_LATENCY_RATE, STORM_SPIKE),
            )
            .breaker(storm_breaker());
        let storm = run_batch(Some(&world.coach), &raw, &storm_config)
            .expect("storm chain always includes the expert-annotate stage");

        // The sustained-traffic cell: instead of one pre-staged batch, the
        // same pairs arrive continuously at a rate above the service's
        // modeled drain capacity (paper: 1.19 samples/s per A100, one lane
        // per thread here). Admission control keeps the backlog bounded by
        // shedding overload arrivals at the front door — deterministically,
        // independent of thread count and queue depth — rather than letting
        // the pipeline stall.
        let drain_per_sec = 1.19 * world.threads as f64;
        let rate_per_sec = drain_per_sec * SUSTAINED_OVERLOAD;
        let sustained = run_stream(
            Some(&world.coach),
            &raw,
            &world.exec_config(0xDE),
            Feed::Sustained {
                rate_per_sec,
                drain_per_sec,
                backlog_capacity: SUSTAINED_BACKLOG,
            },
        )
        .expect("sustained chain always includes the expert-annotate stage");
        let shed_share = sustained.shed as f64 / raw.len().max(1) as f64;

        // The duplicate-traffic cell (PR 7): the deployed service absorbing
        // Zipfian-duplicated user cases. The baseline re-runs the full
        // chain for every duplicate; the dedup configuration routes by
        // content hash across worker shards and memoizes each content's
        // chain result in a per-shard revision cache, so duplicates replay
        // instead of re-executing. The virtual-time makespans quantify what
        // that saves a service whose CoachRevise step costs ~840 ms a pair.
        let dedup_total = world.scale.deploy_size();
        let dup_traffic = zipfian_duplicates(&ZipfianConfig::stress(
            (dedup_total / 20).max(1),
            dedup_total,
            DEDUP_SKEW,
            world.seed ^ 0xD0D0,
        ));
        let dedup_base = run_batch(Some(&world.coach), &dup_traffic, &world.exec_config(0xDE))
            .expect("dedup baseline always includes the expert-annotate stage");
        let dedup_config = world.exec_config(0xDE).revision_cache(CachePolicy::exact());
        let dedup = run_batch_sharded(
            Some(&world.coach),
            &dup_traffic,
            &dedup_config,
            DEDUP_SHARDS,
        )
        .expect("dedup chain always includes the expert-annotate stage");
        let hit_rate = dedup.report.revision_cache.hit_rate();
        let dedup_speedup =
            dedup_base.sim_elapsed_secs / dedup.report.sim_elapsed_secs.max(f64::MIN_POSITIVE);

        // The shard-crash cell (PR 10): the same service losing a worker
        // replica mid-batch. Every shard runs in its own crash-contained
        // child process; the chaos schedule aborts shard 0's worker a few
        // frames in, and supervision restarts it from its journal. A crash
        // costs wall time (respawn + replay), never output: the merged
        // report must be identical to the in-process sharded run.
        let crash_total = (world.scale.deploy_size() / 8).max(64);
        let mut crash_raw = Dataset::new("production-crash-cell");
        crash_raw.pairs = raw.pairs.iter().take(crash_total).cloned().collect();
        let crash_spec = BatchJobSpec {
            seed: world.seed ^ 0xC7A5,
            threads: world.threads.min(4) as u32,
            coach: Some(CoachTrainSpec {
                seed: world.seed ^ 0xC0A,
                pairs: CRASH_TRAIN_PAIRS,
            }),
        };
        let crash_coach = trained_coach(world.seed ^ 0xC0A, CRASH_TRAIN_PAIRS);
        let crash_config =
            ExecutorConfig::new(crash_spec.seed).threads(crash_spec.threads as usize);
        let t = Instant::now(); // lint: allow(D1, reason = "wall-clock restart-overhead banner only; parity is checked on the virtual-time report")
        let crash_gold =
            run_batch_sharded(Some(&crash_coach), &crash_raw, &crash_config, CRASH_SHARDS)
                .expect("crash cell chain always includes the expert-annotate stage");
        let crash_gold_wall = t.elapsed().as_secs_f64();
        let crash_dir =
            std::env::temp_dir().join(format!("coachlm-deploy-crash-{}", std::process::id()));
        let crash_opts = SuperviseOptions {
            chaos: ChaosPlan {
                worker_kills: vec![WorkerKill {
                    shard: 0,
                    attempt: 0,
                    after_frames: CRASH_KILL_AFTER_FRAMES,
                    mode: KillMode::Boundary,
                }],
                parent_kills: Vec::new(),
            },
            ..SuperviseOptions::default()
        };
        let t = Instant::now(); // lint: allow(D1, reason = "wall-clock restart-overhead banner only; parity is checked on the virtual-time report")
        let crash = run_batch_supervised(
            &crash_spec,
            &crash_raw,
            CRASH_SHARDS,
            &crash_dir,
            &crash_opts,
        )
        .expect("crash cell chain always includes the expert-annotate stage");
        let crash_wall = t.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&crash_dir);
        let crash_restarts: u32 = crash.supervision.iter().map(|s| s.restarts).sum();
        let crash_identical = crash.report.human_revised == crash_gold.report.human_revised
            && crash.report.post_edited == crash_gold.report.post_edited
            && crash.report.quarantined == crash_gold.report.quarantined
            && crash.report.sim_elapsed_secs == crash_gold.report.sim_elapsed_secs;

        let mut table = Table::new([
            "Batch",
            "Human-revised",
            "Post-edited",
            "Quarantined",
            "Degraded",
            "Shed",
            "Retries",
            "Timeouts",
            "Person-days",
            "Pairs/person-day",
        ]);
        for (label, r) in [
            ("manual", &cmp.manual),
            ("with CoachLM", &cmp.assisted),
            ("CoachLM + latency storm", &storm),
            ("CoachLM + sustained traffic", &sustained),
            ("CoachLM + duplicate traffic (uncached)", &dedup_base),
            (
                "CoachLM + duplicate traffic (cached+sharded)",
                &dedup.report,
            ),
            ("CoachLM + worker crash (supervised, subset)", &crash.report),
        ] {
            table.row([
                label.to_string(),
                r.human_revised.to_string(),
                r.post_edited.to_string(),
                r.quarantined.to_string(),
                r.degraded.to_string(),
                r.shed.to_string(),
                r.retries.to_string(),
                total_timeouts(r).to_string(),
                f1(r.person_days),
                f1(r.pairs_per_person_day),
            ]);
        }
        let mut breaker_lines: Vec<String> = storm
            .breaker_events
            .iter()
            .take(8)
            .map(|e| {
                format!(
                    "  epoch {:>3}  {}  {:?} -> {:?}",
                    e.epoch, e.stage, e.from, e.to
                )
            })
            .collect();
        if storm.breaker_events.len() > 8 {
            breaker_lines.push(format!(
                "  ... {} more transitions (persistent brown-out: the breaker keeps probing)",
                storm.breaker_events.len() - 8
            ));
        }
        let report = format!(
            "{}\nraw batch: {} pairs\nefficiency gain: {} (paper: net 15-20%, ~80 -> ~100 pairs/person-day)\n\
             CoachLM inference: {} samples/s on {} CPU threads (paper: 1.19 samples/s on one A100, batch 32)\n\
             storm cell: {:.0}% latency faults of {:?} vs a 5s revise budget; breaker transitions:\n{}\n\
             sustained cell: arrivals at {}/s vs {}/s drain, backlog cap {} -> {} pairs shed ({}), modeled makespan {}s\n\
             dedup cell: {} Zipf(s={}) duplicate pairs over {} contents; cache hit rate {} across {} shards -> \
             modeled makespan {}s vs {}s uncached ({}x)\n\
             crash cell: {} pairs over {} worker processes; shard 0 killed after {} frames -> {} restart(s), \
             merged report identical to in-process: {}; wall {:.1}s vs {:.1}s in-process\n{}",
            self.title(),
            raw.len(),
            pct(cmp.efficiency_gain()),
            f2(cmp.assisted.coachlm_samples_per_sec),
            world.threads,
            STORM_LATENCY_RATE * 100.0,
            STORM_SPIKE,
            if breaker_lines.is_empty() {
                "  (none)".to_string()
            } else {
                breaker_lines.join("\n")
            },
            f2(rate_per_sec),
            f2(drain_per_sec),
            SUSTAINED_BACKLOG,
            sustained.shed,
            pct(shed_share),
            f1(sustained.sim_elapsed_secs),
            dedup_total,
            DEDUP_SKEW,
            (dedup_total / 20).max(1),
            pct(hit_rate),
            DEDUP_SHARDS,
            f1(dedup.report.sim_elapsed_secs),
            f1(dedup_base.sim_elapsed_secs),
            f1(dedup_speedup),
            crash_total,
            CRASH_SHARDS,
            CRASH_KILL_AFTER_FRAMES,
            crash_restarts,
            crash_identical,
            crash_wall,
            crash_gold_wall,
            table.render()
        );
        let json = json!({
            "raw_pairs": raw.len(),
            "manual": {"person_days": cmp.manual.person_days, "rate": cmp.manual.pairs_per_person_day,
                        "human_revised": cmp.manual.human_revised},
            "assisted": {"person_days": cmp.assisted.person_days, "rate": cmp.assisted.pairs_per_person_day,
                          "human_revised": cmp.assisted.human_revised, "post_edited": cmp.assisted.post_edited,
                          "quarantined": cmp.assisted.quarantined, "retries": cmp.assisted.retries,
                          "samples_per_sec": cmp.assisted.coachlm_samples_per_sec,
                          "stages": cmp.assisted.stage_summaries},
            "storm": {"person_days": storm.person_days, "rate": storm.pairs_per_person_day,
                       "quarantined": storm.quarantined, "degraded": storm.degraded,
                       "retries": storm.retries, "timeouts": total_timeouts(&storm),
                       "breaker_events": storm.breaker_events,
                       "latency_rate": STORM_LATENCY_RATE,
                       "spike_secs": STORM_SPIKE.as_secs_f64(),
                       "stages": storm.stage_summaries},
            "sustained": {"person_days": sustained.person_days, "rate": sustained.pairs_per_person_day,
                           "human_revised": sustained.human_revised, "post_edited": sustained.post_edited,
                           "shed": sustained.shed, "shed_share": shed_share,
                           "rate_per_sec": rate_per_sec, "drain_per_sec": drain_per_sec,
                           "backlog_capacity": SUSTAINED_BACKLOG,
                           "sim_elapsed_secs": sustained.sim_elapsed_secs,
                           "stages": sustained.stage_summaries},
            "dedup": {"total_pairs": dedup_total, "distinct_contents": (dedup_total / 20).max(1),
                       "zipf_exponent": DEDUP_SKEW, "shards": DEDUP_SHARDS,
                       "cache": dedup.report.revision_cache, "hit_rate": hit_rate,
                       "per_shard": dedup.shards,
                       "sim_elapsed_secs": dedup.report.sim_elapsed_secs,
                       "uncached_sim_elapsed_secs": dedup_base.sim_elapsed_secs,
                       "sim_speedup": dedup_speedup,
                       "person_days": dedup.report.person_days,
                       "rate": dedup.report.pairs_per_person_day},
            "supervised_crash": {"pairs": crash_total, "shards": CRASH_SHARDS,
                       "kill": {"shard": 0, "attempt": 0, "after_frames": CRASH_KILL_AFTER_FRAMES,
                                 "mode": "boundary"},
                       "restarts": crash_restarts,
                       "supervision": crash.supervision,
                       "identical_to_in_process": crash_identical,
                       "wall_secs": crash_wall,
                       "in_process_wall_secs": crash_gold_wall,
                       "train_pairs": CRASH_TRAIN_PAIRS,
                       "person_days": crash.report.person_days,
                       "rate": crash.report.pairs_per_person_day},
            "efficiency_gain": cmp.efficiency_gain(),
            "paper": {"gain_low": 0.15, "gain_high": 0.20, "samples_per_sec_a100": 1.19},
        });
        (report, json)
    }
}

fn total_timeouts(r: &PipelineReport) -> u64 {
    r.stage_summaries.iter().map(|s| s.timeouts).sum()
}
