//! §IV-A — CoachLM in the production data management pipeline (Fig 6).

use super::Experiment;
use crate::format::{f1, f2, pct, Table};
use crate::world::ExperimentWorld;
use coachlm_core::pipeline::compare_deployment;
use coachlm_data::generator::{generate, GeneratorConfig};
use serde_json::json;

/// Deployment experiment.
pub struct Deploy;

impl Experiment for Deploy {
    fn id(&self) -> &'static str {
        "deploy"
    }

    fn title(&self) -> &'static str {
        "Section IV-A: data management pipeline efficiency with vs without CoachLM"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        // A fresh raw batch (the paper's ~40k production pairs) — user-case
        // data, not the ALPACA52K stand-in, so generate with a new seed.
        let (raw, _) = generate(&GeneratorConfig {
            size: world.scale.deploy_size(),
            seed: world.seed ^ 0xDE9107,
            name: "production-batch".to_string(),
            ..GeneratorConfig::default()
        });
        let cmp = compare_deployment(&world.coach, &raw, &world.exec_config(0xDE))
            .expect("deploy chain always includes the expert-annotate stage");

        let mut table = Table::new([
            "Batch",
            "Human-revised",
            "Post-edited",
            "Quarantined",
            "Retries",
            "Person-days",
            "Pairs/person-day",
        ]);
        for r in [&cmp.manual, &cmp.assisted] {
            table.row([
                if r.with_coachlm {
                    "with CoachLM"
                } else {
                    "manual"
                }
                .to_string(),
                r.human_revised.to_string(),
                r.post_edited.to_string(),
                r.quarantined.to_string(),
                r.retries.to_string(),
                f1(r.person_days),
                f1(r.pairs_per_person_day),
            ]);
        }
        let report = format!(
            "{}\nraw batch: {} pairs\nefficiency gain: {} (paper: net 15-20%, ~80 -> ~100 pairs/person-day)\n\
             CoachLM inference: {} samples/s on {} CPU threads (paper: 1.19 samples/s on one A100, batch 32)\n{}",
            self.title(),
            raw.len(),
            pct(cmp.efficiency_gain()),
            f2(cmp.assisted.coachlm_samples_per_sec),
            world.threads,
            table.render()
        );
        let json = json!({
            "raw_pairs": raw.len(),
            "manual": {"person_days": cmp.manual.person_days, "rate": cmp.manual.pairs_per_person_day,
                        "human_revised": cmp.manual.human_revised},
            "assisted": {"person_days": cmp.assisted.person_days, "rate": cmp.assisted.pairs_per_person_day,
                          "human_revised": cmp.assisted.human_revised, "post_edited": cmp.assisted.post_edited,
                          "quarantined": cmp.assisted.quarantined, "retries": cmp.assisted.retries,
                          "samples_per_sec": cmp.assisted.coachlm_samples_per_sec,
                          "stages": cmp.assisted.stage_summaries},
            "efficiency_gain": cmp.efficiency_gain(),
            "paper": {"gain_low": 0.15, "gain_high": 0.20, "samples_per_sec_a100": 1.19},
        });
        (report, json)
    }
}
