//! Table III — distribution of the excluded instruction pairs.

use super::Experiment;
use crate::format::{pct, Table};
use crate::world::ExperimentWorld;
use serde_json::json;

/// Table III experiment.
pub struct Table3;

impl Experiment for Table3 {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn title(&self) -> &'static str {
        "Table III: distribution of excluded instruction pairs (preliminary filter)"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        let out = &world.filter;
        let mut table = Table::new(["Reason", "Measured", "Paper"]);
        let ratios = out.reason_ratios();
        for (reason, measured) in &ratios {
            table.row([reason.label(), &pct(*measured), &pct(reason.paper_ratio())]);
        }
        let excluded = out.excluded.len();
        let total = excluded + out.kept.len();
        let report = format!(
            "{}\nexcluded {excluded} of {total} sampled pairs ({}); paper: 1088 of 6000 (18.1%)\n\
             retained for diversity: {}\n{}",
            self.title(),
            pct(out.exclusion_ratio()),
            out.retained_for_diversity.len(),
            table.render()
        );
        let json = json!({
            "excluded": excluded,
            "total": total,
            "exclusion_ratio": out.exclusion_ratio(),
            "paper_exclusion_ratio": 1088.0 / 6000.0,
            "reasons": ratios
                .iter()
                .map(|(r, m)| json!({"reason": r.label(), "measured": m, "paper": r.paper_ratio()}))
                .collect::<Vec<_>>(),
        });
        (report, json)
    }
}
