//! Strategy tournament — every revision pipeline head-to-head under the
//! debiased judge.
//!
//! The zoo's six strategies (CoachLM, Reflection-Tuning, Self-Review,
//! auto-evol, AlpaGasus filtering, no-op) each revise the same seeded
//! arena through the streaming executor; the outputs are then judged
//! round-robin by the PandaLM-style debiased judge (position-swap
//! debiasing, canonical pair ordering) into a full win/tie/loss matrix,
//! and rated on the 0–5 grid for the Fig-4-style ">4.5 share" table.
//! The paper's Table VII/VIII ordering — revision beats filtering — must
//! re-emerge as `coachlm` beating `filter` in its pairwise cell.

use super::Experiment;
use crate::format::{f2, pct, Table};
use crate::world::ExperimentWorld;
use coachlm_core::strategies::StrategyZoo;
use coachlm_judge::chatgpt::ChatGptRater;
use coachlm_judge::tournament::{run_tournament, Contestant};
use coachlm_judge::PandaLm;
use serde_json::json;

/// Tournament experiment.
pub struct Tournament;

impl Experiment for Tournament {
    fn id(&self) -> &'static str {
        "tournament"
    }

    fn title(&self) -> &'static str {
        "Tournament: revision strategy zoo, pairwise under the debiased judge"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        let arena = world.sample();
        let zoo = StrategyZoo::standard(&world.coach, world.seed ^ 0x70_01);
        let judge = PandaLm::new(world.seed ^ 0x70_02);
        let rater = ChatGptRater::new(world.seed ^ 0x70_03);
        let config = world.exec_config(0x70_04);

        // Every strategy revises the same arena through the same executor.
        let outputs: Vec<(String, coachlm_data::pair::Dataset)> = zoo
            .iter()
            .map(|s| (s.name().to_string(), s.dataset(&arena, &config)))
            .collect();

        let contestants: Vec<Contestant<'_>> = outputs
            .iter()
            .map(|(name, dataset)| Contestant { name, dataset })
            .collect();
        let result = run_tournament(&judge, &arena, &contestants);

        // Fig-4-style quality table per strategy output. A filtered
        // dataset is rated over its survivors, which is exactly where
        // filtering shines (and still loses the head-to-head).
        let ratings: Vec<(String, coachlm_judge::chatgpt::RatingSummary)> = outputs
            .iter()
            .map(|(name, dataset)| (name.clone(), rater.rate_dataset(dataset)))
            .collect();

        let mut matrix_table =
            Table::new(std::iter::once("W/T/L".to_string()).chain(result.names.iter().cloned()));
        for (i, name) in result.names.iter().enumerate() {
            let mut cells = vec![name.clone()];
            for j in 0..result.names.len() {
                if i == j {
                    cells.push("-".to_string());
                } else {
                    let c = result.matrix[i][j];
                    cells.push(format!("{}/{}/{}", c.win, c.tie, c.lose));
                }
            }
            matrix_table.row(cells);
        }

        let standings = result.standings();
        let mut standings_table = Table::new(["Strategy", "Mean WR1", ">4.5 share", "Mean rating"]);
        for (name, wr1) in &standings {
            let rating = ratings.iter().find(|(n, _)| n == name);
            standings_table.row([
                name.clone(),
                f2(*wr1),
                rating.map_or("-".to_string(), |(_, r)| pct(r.share_above_4_5)),
                rating.map_or("-".to_string(), |(_, r)| f2(r.mean)),
            ]);
        }

        let coach_vs_filter = result.counts("coachlm", "filter").unwrap_or_default();
        let coach_beats_filter = coach_vs_filter.win > coach_vs_filter.lose;

        let report = format!(
            "{}\narena: {} pairs; {} strategies; {} comparisons/cell\n\n{}\n{}\n\
             coachlm vs filter: {}W/{}T/{}L — revision {} filtering (Table VII ordering)",
            self.title(),
            arena.len(),
            result.names.len(),
            result.comparisons,
            matrix_table.render(),
            standings_table.render(),
            coach_vs_filter.win,
            coach_vs_filter.tie,
            coach_vs_filter.lose,
            if coach_beats_filter {
                "beats"
            } else {
                "does NOT beat"
            },
        );

        let json = json!({
            "arena_pairs": arena.len(),
            "strategies": result.names,
            "matrix": result.matrix,
            "comparisons_per_cell": result.comparisons,
            "standings": standings
                .iter()
                .map(|(name, wr1)| json!({"name": name, "mean_wr1": wr1}))
                .collect::<Vec<_>>(),
            "ratings": ratings
                .iter()
                .map(|(name, r)| json!({
                    "name": name,
                    "mean": r.mean,
                    "share_above_4_5": r.share_above_4_5,
                    "count": r.count,
                }))
                .collect::<Vec<_>>(),
            "coachlm_vs_filter": coach_vs_filter,
            "coachlm_beats_filter": coach_beats_filter,
        });
        (report, json)
    }
}
