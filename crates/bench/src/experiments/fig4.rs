//! Fig 4 — histogram of ChatGPT ratings before and after CoachLM revision.

use super::Experiment;
use crate::format::{f2, pct, Table};
use crate::world::ExperimentWorld;
use coachlm_judge::chatgpt::ChatGptRater;
use serde_json::json;

/// Fig 4 experiment.
pub struct Fig4;

impl Experiment for Fig4 {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn title(&self) -> &'static str {
        "Fig 4: ChatGPT 0-5 rating histogram, original vs CoachLM-revised"
    }

    fn run(&self, world: &ExperimentWorld) -> (String, serde_json::Value) {
        let rater = ChatGptRater::new(world.seed ^ 0xF16);
        let before = rater.rate_dataset(&world.alpaca);
        let after = rater.rate_dataset(&world.revised.dataset);

        let mut table = Table::new(["Rating", "Original", "Revised"]);
        for bin in 0..11 {
            let label = format!("{:.1}", bin as f64 / 2.0);
            table.row([
                label,
                pct(before.histogram[bin] as f64 / before.count.max(1) as f64),
                pct(after.histogram[bin] as f64 / after.count.max(1) as f64),
            ]);
        }
        let report = format!(
            "{}\nmean rating: {} -> {} (paper: 3.95 -> 4.31)\n\
             share above 4.5: {} -> {} (paper: 17.7% -> 78.9%)\n{}",
            self.title(),
            f2(before.mean),
            f2(after.mean),
            pct(before.share_above_4_5),
            pct(after.share_above_4_5),
            table.render()
        );
        let json = json!({
            "before": {"mean": before.mean, "above_4_5": before.share_above_4_5, "histogram": before.histogram},
            "after": {"mean": after.mean, "above_4_5": after.share_above_4_5, "histogram": after.histogram},
            "paper": {"before": {"mean": 3.95, "above_4_5": 0.177}, "after": {"mean": 4.31, "above_4_5": 0.789}},
        });
        (report, json)
    }
}
