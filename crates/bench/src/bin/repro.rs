//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale full|quick] [--seed N] <experiment id>... | all
//! ```
//!
//! Reports print to stdout; machine-readable records land in
//! `results/<id>.json`.

use coachlm_bench::experiments;
use coachlm_bench::format::write_result_json;
use coachlm_bench::world::{ExperimentWorld, Scale};
use std::time::Instant;

fn main() {
    // The deploy experiment's shard-crash cell re-invokes this binary as
    // supervised worker processes; in that mode worker_boot runs the
    // shard and never returns.
    coachlm_runtime::worker_boot(coachlm_core::pipeline::batch_job_factory);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut seed: u64 = 0xC0AC_2024;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("expected --scale full|quick"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("expected --seed <u64>"));
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
        die("no experiment id given");
    }
    let run_all = ids.iter().any(|s| s == "all");
    let selected: Vec<Box<dyn experiments::Experiment>> = if run_all {
        experiments::all()
    } else {
        ids.iter()
            .map(|id| {
                experiments::by_id(id)
                    .unwrap_or_else(|| die(&format!("unknown experiment id: {id}")))
            })
            .collect()
    };

    eprintln!("building experiment world (scale {scale:?}, seed {seed:#x}) ...");
    let t0 = Instant::now(); // lint: allow(D1, reason = "progress reporting on stderr only; no experiment output depends on this timing")
    let world = ExperimentWorld::build(scale, seed);
    eprintln!(
        "world ready in {:.1}s: {} pairs, {} expert revisions, C_a = {}\n",
        t0.elapsed().as_secs_f64(),
        world.alpaca.len(),
        world.records.len(),
        world.coach.trained_on()
    );

    for exp in selected {
        let t = Instant::now(); // lint: allow(D1, reason = "per-experiment wall-clock banner only; the JSON artifacts carry no timing")
        let (report, json) = exp.run(&world);
        println!("=== {} ({:.1}s) ===", exp.id(), t.elapsed().as_secs_f64());
        println!("{report}");
        if let Err(e) = write_result_json(exp.id(), &json) {
            eprintln!("warning: could not write results/{}.json: {e}", exp.id());
        }
    }
}

fn usage() {
    eprintln!(
        "usage: repro [--scale full|quick] [--seed N] <id>... | all\n\
         ids: table3 table4 table7 fig4 table8 table9 table10 fig5 table11 deploy tournament"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2); // lint: allow(C1, reason = "CLI usage error in the offline repro binary; no worker is alive to supervise")
}
