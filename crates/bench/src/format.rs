//! Plain-text table formatting for experiment reports.

/// A simple column-aligned ASCII table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(c);
                line.push_str(&" ".repeat(w - c.chars().count()));
                line.push_str(" | ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Writes an experiment's JSON result under `results/`.
pub fn write_result_json(id: &str, json: &serde_json::Value) -> std::io::Result<()> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join(format!("{id}.json")),
        serde_json::to_string_pretty(json)?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["Model", "WR1"]);
        t.row(["Alpaca", "48.0%"]);
        t.row(["Alpaca-CoachLM", "67.7%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Model"));
        assert!(lines[3].contains("67.7%"));
        // All data lines have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains("x"));
    }

    #[test]
    fn number_formats() {
        assert_eq!(pct(0.6774), "67.7%");
        assert_eq!(f1(3.95), "4.0");
        assert_eq!(f2(3.949), "3.95");
    }
}
