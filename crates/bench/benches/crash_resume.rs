//! Journal and crash-recovery costs: what write-ahead logging adds to an
//! uninterrupted run (per fsync policy), and how fast a resume replays a
//! half-complete journal compared with recomputing from scratch.

use coachlm_data::generator::generate;
use coachlm_data::{Dataset, GeneratorConfig};
use coachlm_runtime::{
    Executor, ExecutorConfig, Journal, Stage, StageCtx, StageItem, StageOutcome,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The same CPU-heavy stand-in stage the scaling benchmark uses, so the
/// journal numbers are comparable with the unjournaled baseline there.
struct ScoreStage;

impl Stage for ScoreStage {
    fn name(&self) -> &str {
        "score"
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let words = ctx.cache.word_count(&item.pair.response);
        let rounds = 5_000 + ctx.rng.gen_range(0u64..5_000);
        let mut acc = words as u64;
        for i in 0..rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        if acc.is_multiple_of(7) {
            ctx.bump("lucky");
        }
        StageOutcome::Ok
    }
}

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_path() -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "coachlm-bench-journal-{}-{n}.wal",
        std::process::id()
    ))
}

fn sample_dataset(pairs: usize) -> Dataset {
    generate(&GeneratorConfig::small(pairs, 0x5CA1E)).0
}

fn config() -> ExecutorConfig {
    ExecutorConfig::new(9).threads(4)
}

/// Write-ahead logging overhead at different fsync batch sizes, against
/// the unjournaled run as the baseline.
fn bench_journal_overhead(c: &mut Criterion) {
    let dataset = sample_dataset(1_000);
    let mut group = c.benchmark_group("journal");
    group.throughput(Throughput::Elements(dataset.len() as u64));
    group.bench_function("unjournaled", |b| {
        b.iter(|| {
            let stages: Vec<Box<dyn Stage>> = vec![Box::new(ScoreStage)];
            black_box(Executor::new(config()).run_dataset(&stages, &dataset))
        });
    });
    for sync_every in [1usize, 32, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("sync_every", sync_every),
            &sync_every,
            |b, &sync_every| {
                b.iter(|| {
                    let stages: Vec<Box<dyn Stage>> = vec![Box::new(ScoreStage)];
                    let path = temp_path();
                    let mut journal = Journal::create(&path)
                        .expect("create journal")
                        .sync_every(sync_every);
                    let out = Executor::new(config())
                        .run_journaled(&stages, dataset.pairs.clone(), &mut journal)
                        .expect("journaled run");
                    drop(journal);
                    std::fs::remove_file(&path).ok();
                    black_box(out)
                });
            },
        );
    }
    group.finish();
}

/// Resume throughput: replaying a committed prefix is bookkeeping, not
/// recomputation, so resuming a mostly-complete journal should beat the
/// from-scratch run roughly in proportion to the committed fraction.
fn bench_resume_replay(c: &mut Criterion) {
    let dataset = sample_dataset(1_000);
    let stages: Vec<Box<dyn Stage>> = vec![Box::new(ScoreStage)];

    // One intact journal, truncated to each fraction before every resume.
    let path = temp_path();
    let mut journal = Journal::create(&path)
        .expect("create journal")
        .sync_every(1);
    Executor::new(config())
        .run_journaled(&stages, dataset.pairs.clone(), &mut journal)
        .expect("journaled run");
    let spans = journal.record_spans().to_vec();
    drop(journal);
    let bytes = std::fs::read(&path).expect("read journal");

    let mut group = c.benchmark_group("resume");
    group.throughput(Throughput::Elements(dataset.len() as u64));
    for percent in [25usize, 50, 90] {
        let cut = spans[spans.len() * percent / 100].1 as usize;
        group.bench_with_input(
            BenchmarkId::new("committed_pct", percent),
            &cut,
            |b, &cut| {
                b.iter(|| {
                    let stages: Vec<Box<dyn Stage>> = vec![Box::new(ScoreStage)];
                    let resume_path = temp_path();
                    std::fs::write(&resume_path, &bytes[..cut]).expect("truncate");
                    let mut journal = Journal::open(&resume_path).expect("recover");
                    let out = Executor::new(config())
                        .resume_from(&stages, dataset.pairs.clone(), &mut journal)
                        .expect("resume");
                    drop(journal);
                    std::fs::remove_file(&resume_path).ok();
                    black_box(out)
                });
            },
        );
    }
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_journal_overhead, bench_resume_replay
}
criterion_main!(benches);
