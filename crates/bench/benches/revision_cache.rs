//! Revision-cache and sharding benchmarks (PR 7): cache-hit-rate ×
//! throughput curves over Zipfian-duplicated traffic, in both time
//! domains.
//!
//! * **Virtual time** (`sim_*` metrics) — the deterministic service-time
//!   model. The chain mirrors the deployed service's anchors (CoachRevise
//!   ~840 ms/pair, ExpertAnnotate ~300 ms/pair), so a cache hit that
//!   skips the whole stage topology saves ~1.14 modeled seconds per
//!   duplicate. These figures are host-independent and exactly
//!   reproducible.
//! * **Wall time** (`wall_*` metrics) — real elapsed seconds on whatever
//!   cores the host grants; honest but machine-dependent.
//!
//! Two families of records land in `BENCH_4.json` via `scripts/bench.sh`:
//!
//! * `revision_cache/skew/...` — the hit-rate × throughput sweep over
//!   Zipf exponents (uniform traffic up to web-like skew), cached vs
//!   uncached, single shard.
//! * `revision_cache/stress/...` — the acceptance cell: a 10M-pair
//!   Zipfian workload (`COACHLM_CACHE_BENCH_PAIRS` overrides the size),
//!   cached + 8-shard vs uncached single-shard; the published claim is
//!   `sim_speedup_vs_uncached >= 5`.

use coachlm_data::generator::{zipfian_duplicates, ZipfianConfig};
use coachlm_data::InstructionPair;
use coachlm_runtime::shard::run_sharded;
use coachlm_runtime::{
    adaptive_chunk_size, CachePolicy, ChainOutput, Executor, ExecutorConfig, Stage, StageCtx,
    StageItem, StageOutcome, StreamSource,
};
use criterion::{append_metric, criterion_group, criterion_main, Criterion};
use rand::Rng;
use std::time::{Duration, Instant};

/// A revise-like stage: cheap real work (so 10M-pair runs finish in wall
/// seconds) with the deployed service's modeled cost per pair.
struct ServiceStage {
    label: &'static str,
    service_ms: u64,
}

impl Stage for ServiceStage {
    fn name(&self) -> &str {
        self.label
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let words = ctx.cache.word_count(&item.pair.response);
        let roll: u64 = ctx.rng.gen_range(0..1_000);
        let mut acc = words as u64 ^ roll;
        for i in 0..40u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        if acc.is_multiple_of(97) {
            ctx.bump("lucky");
        }
        StageOutcome::Ok
    }

    fn service_time(&self) -> Duration {
        Duration::from_millis(self.service_ms)
    }
}

/// The deployed chain's virtual-time anchors: CoachRevise at ~840 ms and
/// the expert-annotate handling at ~300 ms per pair.
fn service_chain() -> Vec<Box<dyn Stage + 'static>> {
    vec![
        Box::new(ServiceStage {
            label: "coach-revise",
            service_ms: 840,
        }),
        Box::new(ServiceStage {
            label: "expert-annotate",
            service_ms: 300,
        }),
    ]
}

struct CellResult {
    out: ChainOutput,
    wall: Duration,
}

fn run_cell(config: &ExecutorConfig, pairs: Vec<InstructionPair>, shards: usize) -> CellResult {
    let stages = service_chain();
    let start = Instant::now();
    let out = if shards <= 1 {
        Executor::new(config.clone()).run(&stages, pairs)
    } else {
        run_sharded(config, &stages, StreamSource::batch(pairs), shards)
            .expect("batch feed is always shardable")
            .output
    };
    CellResult {
        out,
        wall: start.elapsed(),
    }
}

fn emit(id: &str, n: usize, cell: &CellResult, sim_base: f64, wall_base: f64) {
    let sim = cell.out.sim_elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    let wall = cell.wall.as_secs_f64().max(f64::MIN_POSITIVE);
    append_metric(
        id,
        &[
            ("hit_rate", cell.out.revision_cache.hit_rate()),
            ("sim_elapsed_secs", sim),
            ("sim_pairs_per_sec", n as f64 / sim),
            ("sim_speedup_vs_uncached", sim_base / sim),
            ("wall_elapsed_secs", wall),
            ("wall_pairs_per_sec", n as f64 / wall),
            ("wall_speedup_vs_uncached", wall_base / wall),
        ],
    );
}

/// Hit-rate × throughput curves: duplicate skew (uniform traffic up to
/// heavy web-like skew) crossed with the distinct/total ratio, so the
/// published curve spans hit rates from ~0.5 (half the traffic is unique)
/// to ~0.99. One execution per cell — both time domains come from a
/// single run, and the sim figures are exact, not samples.
fn bench_skew_sweep(_c: &mut Criterion) {
    const TOTAL: usize = 200_000;
    let threads = 4;
    for skew in [0.0f64, 0.9, 1.1, 1.4] {
        for distinct in [TOTAL / 2, TOTAL / 10, TOTAL / 100] {
            let pairs =
                zipfian_duplicates(&ZipfianConfig::stress(distinct, TOTAL, skew, 0xCAC4E)).pairs;
            let uncached = run_cell(
                &ExecutorConfig::new(7).threads(threads).content_keyed(true),
                pairs.clone(),
                1,
            );
            let sim_base = uncached
                .out
                .sim_elapsed
                .as_secs_f64()
                .max(f64::MIN_POSITIVE);
            let wall_base = uncached.wall.as_secs_f64().max(f64::MIN_POSITIVE);
            emit(
                &format!("revision_cache/skew/s={skew}/d={distinct}/uncached"),
                TOTAL,
                &uncached,
                sim_base,
                wall_base,
            );
            let cached = run_cell(
                &ExecutorConfig::new(7)
                    .threads(threads)
                    .revision_cache(CachePolicy::exact()),
                pairs,
                1,
            );
            assert_eq!(
                cached.out.digest(),
                uncached.out.digest(),
                "cache transparency at skew {skew}, {distinct} distinct"
            );
            emit(
                &format!("revision_cache/skew/s={skew}/d={distinct}/cached"),
                TOTAL,
                &cached,
                sim_base,
                wall_base,
            );
        }
    }
}

/// The acceptance cell: a 10M-pair Zipfian workload, cached + sharded vs
/// the uncached single-shard baseline. `COACHLM_CACHE_BENCH_PAIRS`
/// overrides the workload size (the full 10M run costs wall minutes).
fn bench_dedup_stress(_c: &mut Criterion) {
    let total: usize = std::env::var("COACHLM_CACHE_BENCH_PAIRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000_000);
    let distinct = (total / 100).max(1);
    let shards = 8;
    let threads = 4;
    let queue = 1_024;
    let pairs = zipfian_duplicates(&ZipfianConfig::stress(distinct, total, 1.1, 0x57E55)).pairs;

    // Satellite: the adaptive chunk size the streaming core picks for this
    // workload shape, recorded alongside the throughput figures.
    let chunk = adaptive_chunk_size(total, threads, queue);
    append_metric(
        "revision_cache/stress/chunk",
        &[
            ("adaptive_chunk_size", chunk as f64),
            ("threads", threads as f64),
            ("queue_capacity", queue as f64),
        ],
    );

    let uncached = run_cell(
        &ExecutorConfig::new(11)
            .threads(threads)
            .queue_capacity(queue)
            .content_keyed(true),
        pairs.clone(),
        1,
    );
    let sim_base = uncached
        .out
        .sim_elapsed
        .as_secs_f64()
        .max(f64::MIN_POSITIVE);
    let wall_base = uncached.wall.as_secs_f64().max(f64::MIN_POSITIVE);
    emit(
        &format!("revision_cache/stress/n={total}/uncached_1shard"),
        total,
        &uncached,
        sim_base,
        wall_base,
    );

    let cached = run_cell(
        &ExecutorConfig::new(11)
            .threads(threads)
            .queue_capacity(queue)
            .revision_cache(CachePolicy::exact()),
        pairs,
        shards,
    );
    emit(
        &format!("revision_cache/stress/n={total}/cached_{shards}shards"),
        total,
        &cached,
        sim_base,
        wall_base,
    );
    let speedup = sim_base / cached.out.sim_elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    assert!(
        speedup >= 5.0,
        "acceptance: cached+sharded must beat the uncached single-shard \
         baseline by >=5x in virtual time (got {speedup:.2}x)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_skew_sweep, bench_dedup_stress
}
criterion_main!(benches);
