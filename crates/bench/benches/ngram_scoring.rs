//! N-gram scoring throughput: the packed, fingerprint-keyed
//! [`NgramLm::prob`] path against an in-bench reimplementation of the
//! previous `Vec<Sym>`-keyed tables (which assembled a gram buffer per
//! query), so the speedup is measured in the same run on the same corpus.

use coachlm_lm::corpus::corpus_slice;
use coachlm_lm::{NgramLm, Vocab};
use coachlm_text::fxhash::FxHashMap;
use coachlm_text::intern::Sym;
use coachlm_text::ngram::ngrams;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

const ORDER: usize = 3;

/// The pre-fingerprint scoring path, reimplemented verbatim: `Vec<Sym>`
/// keys, a `gram` buffer assembled per query, Witten-Bell interpolation
/// identical to [`NgramLm::prob`].
struct VecKeyedLm {
    vocab: Vocab,
    counts: Vec<FxHashMap<Vec<Sym>, u64>>,
    totals: Vec<u64>,
    continuation_counts: FxHashMap<Vec<Sym>, usize>,
}

impl VecKeyedLm {
    fn train(sentences: &[&str]) -> Self {
        let mut vocab = Vocab::new();
        let mut counts: Vec<FxHashMap<Vec<Sym>, u64>> =
            (0..ORDER).map(|_| FxHashMap::default()).collect();
        let mut totals = vec![0u64; ORDER];
        let mut continuation_counts: FxHashMap<Vec<Sym>, usize> = FxHashMap::default();
        for s in sentences {
            let seq = vocab.add_text(s);
            for order in 1..=ORDER {
                for w in ngrams(&seq, order) {
                    let entry = counts[order - 1].entry(w.to_vec()).or_insert(0);
                    *entry += 1;
                    if *entry == 1 && order >= 2 {
                        *continuation_counts
                            .entry(w[..order - 1].to_vec())
                            .or_insert(0) += 1;
                    }
                    totals[order - 1] += 1;
                }
            }
        }
        Self {
            vocab,
            counts,
            totals,
            continuation_counts,
        }
    }

    fn count(&self, gram: &[Sym]) -> u64 {
        if gram.is_empty() || gram.len() > ORDER {
            return 0;
        }
        self.counts[gram.len() - 1].get(gram).copied().unwrap_or(0)
    }

    fn prob(&self, context: &[Sym], word: Sym) -> f64 {
        let ctx_start = context.len().saturating_sub(ORDER - 1);
        self.prob_backoff(&context[ctx_start..], word)
    }

    fn prob_backoff(&self, context: &[Sym], word: Sym) -> f64 {
        if context.is_empty() {
            let v = self.vocab.len() as f64 + 1.0;
            let total = self.totals[0] as f64;
            let c = self.count(&[word]) as f64;
            let t = self.counts[0].len() as f64;
            return (c + t / v) / (total + t).max(1.0);
        }
        let mut gram = context.to_vec();
        gram.push(word);
        let c_hw = self.count(&gram) as f64;
        let c_h = self.count(context) as f64;
        let t_h = self.continuation_counts.get(context).copied().unwrap_or(0) as f64;
        let lower = self.prob_backoff(&context[1..], word);
        if c_h == 0.0 && t_h == 0.0 {
            return lower;
        }
        (c_hw + t_h * lower) / (c_h + t_h)
    }
}

/// Every (context, word) scoring event for the probe sentences, encoded
/// against the given vocabulary — the per-iteration workload.
fn events(vocab: &Vocab, probes: &[&str]) -> Vec<Vec<Sym>> {
    probes.iter().map(|p| vocab.encode_text(p)).collect()
}

fn score_all(seqs: &[Vec<Sym>], prob: impl Fn(&[Sym], Sym) -> f64) -> f64 {
    let mut total = 0.0;
    for seq in seqs {
        for i in 1..seq.len() {
            total += prob(&seq[..i], seq[i]);
        }
    }
    total
}

fn bench_ngram_scoring(c: &mut Criterion) {
    let sentences = corpus_slice(1.0);
    let packed = NgramLm::train(ORDER, &sentences);
    let vec_keyed = VecKeyedLm::train(&sentences);
    // Probes mix in-corpus text with unseen words so every backoff depth
    // (full trigram hit down to unigram-only) is exercised.
    let probes = [
        "The water cycle moves water through evaporation and rain.",
        "Make the instruction specific, detailed, and feasible for a language model.",
        "zebra quantum xylophone drives the unseen tail of the distribution",
    ];

    let packed_events = events(packed.vocab(), &probes);
    let vec_events = events(&vec_keyed.vocab, &probes);
    let n_events: usize = packed_events.iter().map(|s| s.len() - 1).sum();
    assert!(
        (score_all(&packed_events, |c, w| packed.prob(c, w))
            - score_all(&vec_events, |c, w| vec_keyed.prob(c, w)))
        .abs()
            < 1e-9,
        "packed and Vec-keyed scoring must agree before timing them"
    );

    let mut g = c.benchmark_group("ngram");
    g.throughput(Throughput::Elements(n_events as u64));
    g.bench_function("prob_packed", |b| {
        b.iter(|| score_all(black_box(&packed_events), |ctx, w| packed.prob(ctx, w)))
    });
    g.bench_function("prob_vec_keyed", |b| {
        b.iter(|| score_all(black_box(&vec_events), |ctx, w| vec_keyed.prob(ctx, w)))
    });
    g.finish();

    // End-to-end fluency scoring (encode + score + squash), the judge-side
    // consumer of the prob path.
    c.bench_function("ngram/fluency", |b| {
        b.iter(|| packed.fluency(black_box(probes[1])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ngram_scoring
}
criterion_main!(benches);
