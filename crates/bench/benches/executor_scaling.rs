//! Executor scaling: the same stage chain over the same dataset at
//! increasing worker counts. Output is identical at every thread count
//! (the executor's determinism contract); only wall-clock should move.
//!
//! Two families of figures come out of this binary:
//!
//! * **Wall medians** (`executor/threads/N`, `executor/stream/...`) — real
//!   elapsed time on whatever cores the host grants. On a single-core
//!   container these barely move with the thread count; the
//!   `speedup_vs_1` metric records exactly that honestly.
//! * **Virtual-time figures** (`.../sim` records) — the streaming core's
//!   deterministic service-time model ([`Stage::service_time`]): each
//!   item charges its stage's modeled service to a lane, and the sink's
//!   recurrence yields the makespan a machine with that many real lanes
//!   would see. `sim_speedup_vs_1` is the pipeline-parallel scaling claim
//!   and is host-independent.

use coachlm_data::generator::generate;
use coachlm_data::{Dataset, GeneratorConfig};
use coachlm_runtime::{
    adaptive_chunk_size, Executor, ExecutorConfig, Schedule, Stage, StageCtx, StageItem,
    StageOutcome, StreamSource,
};
use criterion::{
    append_metric, black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use rand::Rng;
use std::time::Duration;

/// A stand-in for a CPU-heavy revision stage: tokenises through the cache
/// and burns a seeded, data-dependent amount of scoring work.
struct ScoreStage;

impl Stage for ScoreStage {
    fn name(&self) -> &str {
        "score"
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let words = ctx.cache.word_count(&item.pair.response);
        let rounds = 5_000 + ctx.rng.gen_range(0u64..5_000);
        let mut acc = words as u64;
        for i in 0..rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        if acc.is_multiple_of(7) {
            ctx.bump("lucky");
        }
        StageOutcome::Ok
    }
}

/// A heavy-tailed stand-in: most items are cheap scoring work, but the last
/// stretch of the batch is latency-bound — modelling the production revision
/// path, where a slice of pairs waits on an external LLM endpoint. Under
/// static contiguous chunking the whole tail lands in one worker's chunk and
/// its waits serialise; the dynamic scheduler spreads the tail across
/// whichever workers finish their cheap chunks first, overlapping the waits.
struct SkewedStage {
    heavy_from: u64,
}

impl Stage for SkewedStage {
    fn name(&self) -> &str {
        "skewed"
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let words = ctx.cache.word_count(&item.pair.response);
        let rounds = 2_000 + ctx.rng.gen_range(0u64..1_000);
        let mut acc = words as u64;
        for i in 0..rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        if acc.is_multiple_of(7) {
            ctx.bump("lucky");
        }
        if item.pair.id >= self.heavy_from {
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
        StageOutcome::Ok
    }
}

/// A uniform pipeline stage with an explicit modeled service time, for the
/// streaming benches: cheap real work (so a 52k-pair run finishes in wall
/// seconds) but an honest virtual-time charge per item.
struct PipeStage {
    label: &'static str,
    rounds: u64,
    service_us: u64,
}

impl Stage for PipeStage {
    fn name(&self) -> &str {
        self.label
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let words = ctx.cache.word_count(&item.pair.response);
        let rounds = self.rounds + ctx.rng.gen_range(0u64..self.rounds / 4 + 1);
        let mut acc = words as u64;
        for i in 0..rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        if acc.is_multiple_of(7) {
            ctx.bump("lucky");
        }
        StageOutcome::Ok
    }

    fn service_time(&self) -> Duration {
        Duration::from_micros(self.service_us)
    }
}

/// The two-stage streaming chain: a light front stage feeding a heavier
/// revise-like stage, so lane allocation and pipelining both matter.
fn stream_chain() -> Vec<Box<dyn Stage + 'static>> {
    vec![
        Box::new(PipeStage {
            label: "tokenize",
            rounds: 400,
            service_us: 2,
        }),
        Box::new(PipeStage {
            label: "revise",
            rounds: 1_200,
            service_us: 6,
        }),
    ]
}

fn sample_dataset(pairs: usize) -> Dataset {
    generate(&GeneratorConfig::small(pairs, 0x5CA1E)).0
}

fn bench_executor_scaling(c: &mut Criterion) {
    let dataset = sample_dataset(2_000);
    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(dataset.len() as u64));
    let mut base_ns: Option<f64> = None;
    for threads in [1usize, 2, 4, 8] {
        let median = group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let stages: Vec<Box<dyn Stage>> = vec![Box::new(ScoreStage)];
                    let executor = Executor::new(ExecutorConfig::new(9).threads(threads));
                    black_box(executor.run_dataset(&stages, &dataset))
                });
            },
        );
        let ns = median.as_nanos().max(1) as f64;
        let base = *base_ns.get_or_insert(ns);
        append_metric(
            &format!("executor/threads/{threads}/speedup"),
            &[("speedup_vs_1", base / ns)],
        );
    }
    group.finish();
}

fn bench_stream_scaling(c: &mut Criterion) {
    // Wall medians on a small batch (so iterations stay cheap)...
    let dataset = sample_dataset(2_000);
    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(dataset.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("stream", format!("threads={threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let executor = Executor::new(ExecutorConfig::new(9).threads(threads));
                    black_box(
                        executor.run_stream(
                            &stream_chain(),
                            StreamSource::batch(dataset.pairs.clone()),
                        ),
                    )
                });
            },
        );
    }
    group.finish();

    // ...and the deterministic virtual-time figures on the paper-scale
    // uniform batch. One run per thread count is enough: `sim_elapsed` is
    // exactly reproducible, not a sample.
    let full = sample_dataset(52_000);
    let n = full.len() as f64;
    let mut sim_base: Option<f64> = None;
    for threads in [1usize, 2, 4, 8] {
        let config = ExecutorConfig::new(9).threads(threads);
        let chunk = adaptive_chunk_size(full.len(), threads, config.queue_capacity_items());
        let executor = Executor::new(config);
        let out = executor.run_stream(&stream_chain(), StreamSource::batch(full.pairs.clone()));
        let sim = out.sim_elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        let base = *sim_base.get_or_insert(sim);
        append_metric(
            &format!("executor/stream/threads={threads}/sim"),
            &[
                ("sim_elapsed_secs", sim),
                ("sim_elems_per_sec", n / sim),
                ("sim_speedup_vs_1", base / sim),
                ("adaptive_chunk_size", chunk as f64),
            ],
        );
    }
}

fn bench_stream_queue_depth(c: &mut Criterion) {
    // Bounded-queue depth sweep at a fixed thread count: how much capacity
    // the inter-group queues need before backpressure stops costing wall
    // time (and how little sim figures care — they are capacity-invariant
    // by the determinism contract).
    let dataset = sample_dataset(2_000);
    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(dataset.len() as u64));
    for capacity in [16usize, 64, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::new("stream", format!("queue={capacity}")),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let executor =
                        Executor::new(ExecutorConfig::new(9).threads(4).queue_capacity(capacity));
                    black_box(
                        executor.run_stream(
                            &stream_chain(),
                            StreamSource::batch(dataset.pairs.clone()),
                        ),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_skewed_batch(c: &mut Criterion) {
    let dataset = sample_dataset(2_000);
    // Ids 1900.. (the last ~5% of the batch) carry the heavy tail.
    let heavy_from = 1_900;
    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(dataset.len() as u64));
    for (label, schedule) in [
        ("skewed_static", Schedule::Static),
        ("skewed_dynamic", Schedule::Dynamic),
    ] {
        for threads in [4usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("threads={threads}")),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let stages: Vec<Box<dyn Stage>> =
                            vec![Box::new(SkewedStage { heavy_from })];
                        let executor = Executor::new(
                            ExecutorConfig::new(9).threads(threads).schedule(schedule),
                        );
                        black_box(executor.run_dataset(&stages, &dataset))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor_scaling, bench_stream_scaling, bench_stream_queue_depth, bench_skewed_batch
}
criterion_main!(benches);
