//! Executor scaling: the same stage chain over the same dataset at
//! increasing worker counts. Output is identical at every thread count
//! (the executor's determinism contract); only wall-clock should move.

use coachlm_data::generator::generate;
use coachlm_data::{Dataset, GeneratorConfig};
use coachlm_runtime::{
    Executor, ExecutorConfig, Schedule, Stage, StageCtx, StageItem, StageOutcome,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;

/// A stand-in for a CPU-heavy revision stage: tokenises through the cache
/// and burns a seeded, data-dependent amount of scoring work.
struct ScoreStage;

impl Stage for ScoreStage {
    fn name(&self) -> &str {
        "score"
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let words = ctx.cache.word_count(&item.pair.response);
        let rounds = 5_000 + ctx.rng.gen_range(0u64..5_000);
        let mut acc = words as u64;
        for i in 0..rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        if acc.is_multiple_of(7) {
            ctx.bump("lucky");
        }
        StageOutcome::Ok
    }
}

/// A heavy-tailed stand-in: most items are cheap scoring work, but the last
/// stretch of the batch is latency-bound — modelling the production revision
/// path, where a slice of pairs waits on an external LLM endpoint. Under
/// static contiguous chunking the whole tail lands in one worker's chunk and
/// its waits serialise; the dynamic scheduler spreads the tail across
/// whichever workers finish their cheap chunks first, overlapping the waits.
struct SkewedStage {
    heavy_from: u64,
}

impl Stage for SkewedStage {
    fn name(&self) -> &str {
        "skewed"
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let words = ctx.cache.word_count(&item.pair.response);
        let rounds = 2_000 + ctx.rng.gen_range(0u64..1_000);
        let mut acc = words as u64;
        for i in 0..rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        if acc.is_multiple_of(7) {
            ctx.bump("lucky");
        }
        if item.pair.id >= self.heavy_from {
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
        StageOutcome::Ok
    }
}

fn sample_dataset(pairs: usize) -> Dataset {
    generate(&GeneratorConfig::small(pairs, 0x5CA1E)).0
}

fn bench_executor_scaling(c: &mut Criterion) {
    let dataset = sample_dataset(2_000);
    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(dataset.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let stages: Vec<Box<dyn Stage>> = vec![Box::new(ScoreStage)];
                    let executor = Executor::new(ExecutorConfig::new(9).threads(threads));
                    black_box(executor.run_dataset(&stages, &dataset))
                });
            },
        );
    }
    group.finish();
}

fn bench_skewed_batch(c: &mut Criterion) {
    let dataset = sample_dataset(2_000);
    // Ids 1900.. (the last ~5% of the batch) carry the heavy tail.
    let heavy_from = 1_900;
    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(dataset.len() as u64));
    for (label, schedule) in [
        ("skewed_static", Schedule::Static),
        ("skewed_dynamic", Schedule::Dynamic),
    ] {
        for threads in [4usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("threads={threads}")),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let stages: Vec<Box<dyn Stage>> =
                            vec![Box::new(SkewedStage { heavy_from })];
                        let executor = Executor::new(
                            ExecutorConfig::new(9).threads(threads).schedule(schedule),
                        );
                        black_box(executor.run_dataset(&stages, &dataset))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor_scaling, bench_skewed_batch
}
criterion_main!(benches);
