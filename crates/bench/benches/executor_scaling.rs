//! Executor scaling: the same stage chain over the same dataset at
//! increasing worker counts. Output is identical at every thread count
//! (the executor's determinism contract); only wall-clock should move.

use coachlm_data::generator::generate;
use coachlm_data::{Dataset, GeneratorConfig};
use coachlm_runtime::{Executor, ExecutorConfig, Stage, StageCtx, StageItem};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;

/// A stand-in for a CPU-heavy revision stage: tokenises through the cache
/// and burns a seeded, data-dependent amount of scoring work.
struct ScoreStage;

impl Stage for ScoreStage {
    fn name(&self) -> &str {
        "score"
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) {
        let words = ctx.cache.word_count(&item.pair.response);
        let rounds = 5_000 + ctx.rng.gen_range(0u64..5_000);
        let mut acc = words as u64;
        for i in 0..rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        if acc.is_multiple_of(7) {
            ctx.bump("lucky");
        }
    }
}

fn sample_dataset(pairs: usize) -> Dataset {
    generate(&GeneratorConfig::small(pairs, 0x5CA1E)).0
}

fn bench_executor_scaling(c: &mut Criterion) {
    let dataset = sample_dataset(2_000);
    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(dataset.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let stages: Vec<Box<dyn Stage>> = vec![Box::new(ScoreStage)];
                    let executor = Executor::new(ExecutorConfig::new(9).threads(threads));
                    black_box(executor.run_dataset(&stages, &dataset))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor_scaling
}
criterion_main!(benches);
