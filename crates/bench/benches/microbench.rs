//! Criterion micro-benchmarks for the performance-critical paths:
//! edit distances (the α-selection and Table VII workhorses), the criteria
//! engine (every judge call), CoachLM revision throughput (the §IV-A
//! samples/s claim), PandaLM judging, and dataset generation.

use coachlm_core::coach::{CoachConfig, CoachLm};
use coachlm_data::generator::{generate, GeneratorConfig};
use coachlm_expert::filter::preliminary_filter;
use coachlm_expert::pool::ExpertPool;
use coachlm_expert::revision::ExpertReviser;
use coachlm_judge::criteria::CriteriaEngine;
use coachlm_judge::pandalm::PandaLm;
use coachlm_text::editdist::{
    char_edit_distance, edit_distance, edit_distance_bounded, word_edit_distance, WordDistance,
};
use coachlm_text::intern::Interner;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHORT_A: &str = "The water cycle moves water through evaporation and rain.";
const SHORT_B: &str = "The watr cycle moves water thru evaporation, clouds, and rain.";

fn long_text(words: usize, tag: &str) -> String {
    (0..words)
        .map(|i| format!("w{}{tag}", i % 97))
        .collect::<Vec<_>>()
        .join(" ")
}

fn bench_editdist(c: &mut Criterion) {
    let mut g = c.benchmark_group("editdist");
    g.bench_function("char/short", |b| {
        b.iter(|| char_edit_distance(black_box(SHORT_A), black_box(SHORT_B)))
    });
    for n in [50usize, 200, 800] {
        let a = long_text(n, "a");
        let bt = long_text(n, "b");
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new("word", format!("len={n}")),
            &n,
            |bch, _| bch.iter(|| word_edit_distance(black_box(&a), black_box(&bt))),
        );
        // The ranking path: one calculator across a whole pass, so the
        // tokenisation memo and Myers scratch are warm (zero allocations).
        g.bench_with_input(
            BenchmarkId::new("word_cached", format!("len={n}")),
            &n,
            |bch, _| {
                let mut wd = WordDistance::new();
                bch.iter(|| wd.distance(black_box(&a), black_box(&bt)))
            },
        );
        // Baseline: the pre-bit-parallel word path — intern, then the
        // generic O(m·n) DP — kept here so the speedup is measured in-run.
        g.bench_with_input(
            BenchmarkId::new("word_dp", format!("len={n}")),
            &n,
            |bch, _| {
                bch.iter(|| {
                    let mut interner = Interner::new();
                    let sa = interner.intern_words(black_box(&a));
                    let sb = interner.intern_words(black_box(&bt));
                    edit_distance(&sa, &sb)
                })
            },
        );
    }
    g.bench_function("bounded/k=5", |b| {
        b.iter(|| {
            edit_distance_bounded(
                black_box(SHORT_A.as_bytes()),
                black_box(SHORT_B.as_bytes()),
                5,
            )
        })
    });
    g.finish();
}

fn bench_criteria(c: &mut Criterion) {
    let engine = CriteriaEngine::new();
    let instr = "Explain the water cycle for a middle-school reader with one example.";
    let resp = "The water cycle moves water through evaporation, condensation, and rain. \
        This happens because the sun heats oceans and lakes, lifting vapor into the air. \
        For example, puddles disappear on a sunny day. In summary, water circulates constantly.";
    c.bench_function("criteria/score_pair", |b| {
        b.iter(|| engine.score_pair(black_box(instr), black_box(resp)))
    });
}

fn bench_revision(c: &mut Criterion) {
    // Train a realistic CoachLM once.
    let (d, _) = generate(&GeneratorConfig::small(1500, 7));
    let kept = preliminary_filter(&d, 7).kept;
    let records = ExpertReviser::new(7).revise_dataset(&ExpertPool::paper_pool(), &d, &kept);
    let coach = CoachLm::train(CoachConfig::default(), &records);
    let mut g = c.benchmark_group("coachlm");
    g.throughput(Throughput::Elements(1));
    g.bench_function("revise_pair", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut i = 0usize;
        b.iter(|| {
            let p = &d.pairs[i % d.len()];
            i += 1;
            coach.revise_pair(&mut rng, black_box(&p.instruction), black_box(&p.response))
        })
    });
    g.finish();
}

fn bench_judging(c: &mut Criterion) {
    let judge = PandaLm::new(5);
    let instr = "Explain the water cycle";
    let strong = "The water cycle moves water through evaporation and rain. This happens \
                  because the sun heats the oceans. For example, puddles vanish on sunny days.";
    let weak = "Water moves around the sky sometimes.";
    c.bench_function("pandalm/compare_debiased", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            judge.compare(
                black_box(id),
                black_box(instr),
                black_box(strong),
                black_box(weak),
            )
        })
    });
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("generate_1k_pairs", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generate(black_box(&GeneratorConfig::small(1000, seed)))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_editdist, bench_criteria, bench_revision, bench_judging, bench_generation
}
criterion_main!(benches);
