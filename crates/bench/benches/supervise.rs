//! Process-isolation costs: what crash containment adds to a sharded run
//! (spawn + wire protocol + parent-side replay vs in-process threads), and
//! what one worker crash costs end to end (respawn + journal-backed
//! re-execution under the restart budget).
//!
//! The bench binary is its own worker pool: `worker_boot` at the top of
//! `main` turns re-invocations of this executable into shard workers, so
//! `criterion_main!` is expanded by hand.

use coachlm_core::pipeline::{
    batch_job_factory, run_batch_sharded_journaled, run_batch_supervised, BatchJobSpec,
};
use coachlm_data::generator::generate;
use coachlm_data::{Dataset, GeneratorConfig};
use coachlm_runtime::{
    worker_boot, ChaosPlan, ExecutorConfig, KillMode, SuperviseOptions, WorkerKill,
};
use criterion::{black_box, criterion_group, BenchmarkId, Criterion, Throughput};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Workload size: small enough that spawn overhead is visible next to the
/// chain's own work, large enough that each shard gets a real partition.
const PAIRS: usize = 400;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "coachlm-bench-supervise-{}-{n}",
        std::process::id()
    ))
}

fn sample_dataset() -> Dataset {
    generate(&GeneratorConfig::small(PAIRS, 0x5E7)).0
}

/// The manual batch chain (no coach): workers rebuild it from the spec
/// alone, so a spawn costs process setup + wire traffic, not model
/// training.
fn spec() -> BatchJobSpec {
    BatchJobSpec {
        seed: 0x5E7,
        threads: 2,
        coach: None,
    }
}

fn config() -> ExecutorConfig {
    ExecutorConfig::new(spec().seed).threads(spec().threads as usize)
}

/// Crash containment against in-process threads, per shard count: the
/// gap is one process spawn, one stdin feed, and one parent-side replay
/// per shard.
fn bench_isolation_overhead(c: &mut Criterion) {
    let raw = sample_dataset();
    let mut group = c.benchmark_group("supervise");
    group.throughput(Throughput::Elements(raw.len() as u64));
    for shards in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("in_process", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let dir = temp_dir();
                    std::fs::create_dir_all(&dir).expect("journal dir");
                    let out = run_batch_sharded_journaled(None, &raw, &config(), shards, &dir)
                        .expect("sharded run");
                    std::fs::remove_dir_all(&dir).ok();
                    black_box(out)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("process_isolated", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let dir = temp_dir();
                    let out = run_batch_supervised(
                        &spec(),
                        &raw,
                        shards,
                        &dir,
                        &SuperviseOptions::default(),
                    )
                    .expect("supervised run");
                    std::fs::remove_dir_all(&dir).ok();
                    black_box(out)
                });
            },
        );
    }
    group.finish();
}

/// One worker crash, end to end: the kill lands after `after_frames` item
/// frames, so "early" pays a near-full re-execution and "late" pays the
/// respawn plus a journal replay of the committed prefix.
fn bench_restart_cost(c: &mut Criterion) {
    let raw = sample_dataset();
    let shards = 2usize;
    // Content-hash partitioning is not even: learn shard 0's actual frame
    // count from a clean probe run, so the "late" kill lands inside it.
    let probe_dir = temp_dir();
    let probe = run_batch_supervised(
        &spec(),
        &raw,
        shards,
        &probe_dir,
        &SuperviseOptions::default(),
    )
    .expect("probe run");
    std::fs::remove_dir_all(&probe_dir).ok();
    let shard0_frames = probe.supervision[0].frames_by_attempt[0];
    let mut group = c.benchmark_group("supervise_restart");
    group.throughput(Throughput::Elements(raw.len() as u64));
    for (label, after_frames) in [("early", 1u64), ("late", shard0_frames - 2)] {
        group.bench_with_input(
            BenchmarkId::new("kill", label),
            &after_frames,
            |b, &after_frames| {
                b.iter(|| {
                    let dir = temp_dir();
                    let opts = SuperviseOptions {
                        // sync_every 1: the committed prefix is the whole
                        // received prefix, so "late" measures replay, not
                        // tail re-execution.
                        sync_every: 1,
                        chaos: ChaosPlan {
                            worker_kills: vec![WorkerKill {
                                shard: 0,
                                attempt: 0,
                                after_frames,
                                mode: KillMode::Boundary,
                            }],
                            parent_kills: Vec::new(),
                        },
                        ..SuperviseOptions::default()
                    };
                    let out = run_batch_supervised(&spec(), &raw, shards, &dir, &opts)
                        .expect("supervised run with restart");
                    assert_eq!(
                        out.supervision.iter().map(|s| s.restarts).sum::<u32>(),
                        1,
                        "the scheduled kill must land"
                    );
                    std::fs::remove_dir_all(&dir).ok();
                    black_box(out)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_isolation_overhead, bench_restart_cost
}

fn main() {
    // Re-invocations of this binary by the supervised driver run as shard
    // workers; worker_boot never returns in that mode.
    worker_boot(batch_job_factory);
    benches();
}
