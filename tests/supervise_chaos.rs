//! Chaos harness for process-isolated shard supervision (PR 10).
//!
//! This binary is its own worker pool: `main` calls
//! [`worker_boot`] first, so when [`run_sharded_process`] re-invokes the
//! test executable with `COACHLM_SUPERVISE_WORKER` set, the re-invocation
//! runs the worker protocol instead of the tests. That requires a custom
//! harness (`harness = false` in `Cargo.toml`) — libtest would otherwise
//! own stdout, which is the worker's result channel.
//!
//! Properties pinned here:
//!
//! * **Kill-at-every-frame convergence** — SIGKILL-equivalent worker
//!   aborts at *every* frame boundary of shard 0's stream, and torn
//!   mid-frame kills at every boundary, each restart-converge to the
//!   digest of the in-process [`run_sharded_journaled`] run, with faults
//!   and retries active.
//! * **Corruption is a crash** — a worker that emits a CRC-corrupted
//!   frame and then exits *successfully* is still treated as crashed and
//!   restarted (checksums, not exit codes, are the integrity authority).
//! * **Parent-side kills** — supervisor-inflicted SIGKILLs converge the
//!   same way.
//! * **Chaos proptest** — digest convergence over random seed × kill
//!   schedule (multiple shards and attempts) × shard count 2–8.
//! * **Poison bisection** — an item that aborts its worker on every
//!   attempt is bisected into quarantine as a structured
//!   `FailureRecord` while the rest of the batch completes; retained /
//!   dropped / quarantined stays an exact partition.
//! * **`sync_every` tail-loss bound** — after a kill, the worker journal
//!   on disk trails the parent's received frames by at most `sync_every`
//!   records, and a same-dir rerun resumes from the journal.
//! * **Pipeline integration** — `run_batch_supervised` (with a
//!   worker-side re-trained coach) matches `run_batch_sharded_journaled`
//!   and recovers across a kill.
//!
//! `supervise_matrix_cell` is the CI entry point: `scripts/ci.sh` runs it
//! under `COACHLM_SUPERVISE_SEED` × `COACHLM_SUPERVISE_SHARDS` ×
//! `COACHLM_SUPERVISE_KILL` (early/late/none).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

use coachlm::core::pipeline::{
    batch_job_factory, run_batch_sharded_journaled, run_batch_supervised, trained_coach,
    BatchJobSpec, CoachTrainSpec,
};
use coachlm::data::pair::InstructionPair;
use coachlm::data::Category;
use coachlm::runtime::shard::run_sharded_journaled;
use coachlm::runtime::supervise::run_sharded_process;
use coachlm::runtime::{
    worker_boot, ChaosPlan, ExecutorConfig, FailureKind, FaultPlan, Journal, KillMode, ParentKill,
    RetryPolicy, Stage, StageCtx, StageItem, StageOutcome, StreamSource, SuperviseOptions,
    SupervisedJob, SupervisedOutput, WorkerKill,
};
use rand::Rng;

/// Worker-only env marker arming the poison stage: set via
/// `SuperviseOptions::worker_env`, so only worker processes abort and the
/// supervising parent stays alive to bisect.
const ENV_POISON: &str = "COACHLM_CHAOS_POISON";

/// Marker string that [`PoisonAbort`] hard-kills the process on.
const POISON_MARK: &str = "poison-pill";

// ---------------------------------------------------------------------------
// The test chain, reconstructible on both sides of the process boundary
// ---------------------------------------------------------------------------

/// Content/RNG-driven rewrite — behaviour keys on text and the executor's
/// per-item RNG, never on process identity, so traces from any worker mix
/// compose deterministically.
struct ChaosRewrite;

impl Stage for ChaosRewrite {
    fn name(&self) -> &str {
        "chaos-rewrite"
    }
    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let roll: u64 = ctx.rng.gen_range(0..10_000);
        item.pair.response.push_str(&format!(" [r{roll}]"));
        if item.pair.instruction.contains("drop me") {
            item.discard("chaos:drop");
        } else if roll.is_multiple_of(61) {
            item.tag("chaos:lucky");
        }
        StageOutcome::Ok
    }
    fn service_time(&self) -> Duration {
        Duration::from_millis(120)
    }
}

/// Crash-on-contact stage: when the worker-only env marker is armed, a
/// poison item kills the whole process — the failure mode process
/// isolation exists to contain.
struct PoisonAbort;

impl Stage for PoisonAbort {
    fn name(&self) -> &str {
        "poison-abort"
    }
    fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
        if std::env::var_os(ENV_POISON).is_some() && item.pair.instruction.contains(POISON_MARK) {
            std::process::abort();
        }
        StageOutcome::Ok
    }
}

fn chaos_stages() -> Vec<Box<dyn Stage>> {
    vec![Box::new(PoisonAbort), Box::new(ChaosRewrite)]
}

/// Chaos config: faults and retries active, short epochs so the watchdog
/// heartbeat frames are actually exercised.
fn chaos_config(seed: u64, threads: u32) -> ExecutorConfig {
    ExecutorConfig::new(seed)
        .threads(threads as usize)
        .epoch_len(4)
        .fault_plan(FaultPlan::new(seed ^ 0xFA).transient(0.12).permanent(0.02))
        .retry_policy(RetryPolicy::new(3, Duration::from_millis(8)))
}

const CHAOS_CHAIN: &str = "chaos/basic";

struct ChaosJob {
    config: ExecutorConfig,
}

impl SupervisedJob for ChaosJob {
    fn config(&self) -> &ExecutorConfig {
        &self.config
    }
    fn stages<'a>(&'a self) -> Vec<Box<dyn Stage + 'a>> {
        chaos_stages()
    }
}

fn encode_chaos(seed: u64, threads: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&threads.to_le_bytes());
    out
}

/// The harness's job factory: the chaos chain plus the real pipeline's
/// batch chain, so one worker binary serves both test families.
fn factory(chain: &str, params: &[u8]) -> Option<Box<dyn SupervisedJob>> {
    if chain == CHAOS_CHAIN {
        if params.len() != 12 {
            return None;
        }
        let seed = u64::from_le_bytes(params[0..8].try_into().ok()?);
        let threads = u32::from_le_bytes(params[8..12].try_into().ok()?);
        return Some(Box::new(ChaosJob {
            config: chaos_config(seed, threads),
        }));
    }
    batch_job_factory(chain, params)
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn chaos_pairs(n: usize, seed: u64) -> Vec<InstructionPair> {
    (0..n as u64)
        .map(|i| {
            let mut instruction = format!("chaos instr {i} seed {seed} ünïcode");
            if i.is_multiple_of(9) {
                instruction.push_str(" drop me");
            }
            InstructionPair {
                id: i * 3 + 1,
                instruction,
                response: format!("resp {i}"),
                category: Category((i % 5) as u16),
            }
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("coachlm-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// In-process gold: the digest every supervised run must converge to.
fn gold_digest(seed: u64, threads: u32, pairs: &[InstructionPair], shards: usize) -> u64 {
    let dir = temp_dir(&format!("gold-{seed}-{shards}"));
    let out = run_sharded_journaled(
        &chaos_config(seed, threads),
        &chaos_stages(),
        StreamSource::batch(pairs.to_vec()),
        shards,
        &dir,
    )
    .expect("in-process gold run");
    let digest = out.output.digest();
    let _ = std::fs::remove_dir_all(&dir);
    digest
}

fn run_supervised(
    seed: u64,
    threads: u32,
    pairs: &[InstructionPair],
    shards: usize,
    tag: &str,
    opts: &SuperviseOptions,
) -> SupervisedOutput {
    let dir = temp_dir(tag);
    let out = run_sharded_process(
        factory,
        CHAOS_CHAIN,
        &encode_chaos(seed, threads),
        StreamSource::batch(pairs.to_vec()),
        shards,
        &dir,
        opts,
    )
    .expect("supervised run");
    let _ = std::fs::remove_dir_all(&dir);
    out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// Baseline: a chaos-free supervised run is digest-identical to the
/// in-process sharded run, reports zero restarts, and the per-shard
/// stats mirror the in-process ones.
fn clean_run_matches_in_process() {
    let (seed, threads, shards) = (0xC0A, 2, 3);
    let pairs = chaos_pairs(31, seed);
    let gold = gold_digest(seed, threads, &pairs, shards);
    let out = run_supervised(
        seed,
        threads,
        &pairs,
        shards,
        "clean",
        &SuperviseOptions::default(),
    );
    assert_eq!(out.output.digest(), gold, "clean supervised digest");
    assert_eq!(out.supervision.len(), shards);
    for sup in &out.supervision {
        assert_eq!(sup.restarts, 0, "shard {}", sup.shard);
        assert!(!sup.abandoned);
        assert_eq!(sup.frames_by_attempt.len(), 1);
    }
    let routed: usize = out.shards.iter().map(|s| s.items).sum();
    assert_eq!(routed, pairs.len());
}

/// The tentpole sweep: kill shard 0's worker at every frame boundary and
/// mid-frame at every boundary; every schedule restart-converges to the
/// gold digest and actually restarted.
fn kill_at_every_frame_converges() {
    let (seed, threads, shards) = (0x51E, 2, 2);
    let pairs = chaos_pairs(26, seed);
    let gold = gold_digest(seed, threads, &pairs, shards);
    let clean = run_supervised(
        seed,
        threads,
        &pairs,
        shards,
        "sweep-clean",
        &SuperviseOptions::default(),
    );
    assert_eq!(clean.output.digest(), gold);
    let frames = clean.supervision[0].frames_by_attempt[0];
    assert!(frames > 3, "shard 0 should own a meaningful partition");

    for k in 0..frames {
        for mode in [KillMode::Boundary, KillMode::MidFrame] {
            let opts = SuperviseOptions {
                chaos: ChaosPlan {
                    worker_kills: vec![WorkerKill {
                        shard: 0,
                        attempt: 0,
                        after_frames: k,
                        mode,
                    }],
                    parent_kills: Vec::new(),
                },
                ..SuperviseOptions::default()
            };
            let out = run_supervised(
                seed,
                threads,
                &pairs,
                shards,
                &format!("sweep-{k}-{mode:?}"),
                &opts,
            );
            assert_eq!(
                out.output.digest(),
                gold,
                "kill at frame {k} ({mode:?}) must converge"
            );
            assert_eq!(out.supervision[0].restarts, 1, "frame {k} ({mode:?})");
            assert!(out.supervision[0].backoff_steps > 0);
            assert_eq!(out.supervision[0].frames_by_attempt.len(), 2);
            assert_eq!(out.supervision[1].restarts, 0, "shard 1 untouched");
        }
    }
}

/// A worker that corrupts one frame's checksum and then *finishes
/// cleanly* (exit 0, DONE emitted) is still a crash: integrity comes from
/// checksums, not exit codes.
fn corrupt_frame_is_a_crash() {
    let (seed, threads, shards) = (0xBAD, 2, 2);
    let pairs = chaos_pairs(24, seed);
    let gold = gold_digest(seed, threads, &pairs, shards);
    let opts = SuperviseOptions {
        chaos: ChaosPlan {
            worker_kills: vec![WorkerKill {
                shard: 1,
                attempt: 0,
                after_frames: 2,
                mode: KillMode::CorruptFrame,
            }],
            parent_kills: Vec::new(),
        },
        ..SuperviseOptions::default()
    };
    let out = run_supervised(seed, threads, &pairs, shards, "corrupt", &opts);
    assert_eq!(out.output.digest(), gold);
    assert_eq!(out.supervision[1].restarts, 1, "CRC rejection must restart");
}

/// Supervisor-inflicted SIGKILL mid-stream: same convergence.
fn parent_kill_converges() {
    let (seed, threads, shards) = (0x4B31, 2, 2);
    let pairs = chaos_pairs(24, seed);
    let gold = gold_digest(seed, threads, &pairs, shards);
    let opts = SuperviseOptions {
        chaos: ChaosPlan {
            worker_kills: Vec::new(),
            parent_kills: vec![ParentKill {
                shard: 0,
                attempt: 0,
                after_frames: 3,
            }],
        },
        ..SuperviseOptions::default()
    };
    let out = run_supervised(seed, threads, &pairs, shards, "parent-kill", &opts);
    assert_eq!(out.output.digest(), gold);
    assert_eq!(out.supervision[0].restarts, 1);
}

/// Chaos proptest: digest convergence over seed × kill schedule × shard
/// count 2–8, with kills landing on multiple shards and attempts.
fn proptest_digest_convergence() {
    let cases = proptest::cases().min(10);
    for case in 0..cases {
        let mut rng = proptest::case_rng("supervise_chaos_convergence", case);
        let seed: u64 = rng.gen_range(0..5_000);
        let shards: usize = rng.gen_range(2..=8);
        let threads: u32 = rng.gen_range(1..=2);
        let n: usize = rng.gen_range(24..48);
        let pairs = chaos_pairs(n, seed);
        let mut worker_kills = Vec::new();
        let kills = rng.gen_range(1..=3usize);
        for _ in 0..kills {
            worker_kills.push(WorkerKill {
                shard: rng.gen_range(0..shards),
                attempt: rng.gen_range(0..2),
                after_frames: rng.gen_range(0..(n as u64 / shards as u64).max(2)),
                mode: if rng.gen_bool(0.5) {
                    KillMode::Boundary
                } else {
                    KillMode::MidFrame
                },
            });
        }
        let opts = SuperviseOptions {
            chaos: ChaosPlan {
                worker_kills,
                parent_kills: Vec::new(),
            },
            ..SuperviseOptions::default()
        };
        let gold = gold_digest(seed, threads, &pairs, shards);
        let out = run_supervised(
            seed,
            threads,
            &pairs,
            shards,
            &format!("prop-{case}"),
            &opts,
        );
        assert_eq!(
            out.output.digest(),
            gold,
            "case {case}: seed {seed} shards {shards} must converge"
        );
    }
}

/// Poison bisection end-to-end: one item aborts its worker on every
/// attempt; the supervisor bisects the dead shard's partition until the
/// culprit is quarantined as a structured failure, and everything else
/// completes. Retained / dropped / quarantined is an exact partition.
fn poison_bisection_quarantines_the_culprit() {
    let (seed, threads, shards) = (0xF00D, 1, 2);
    let mut pairs = chaos_pairs(22, seed);
    // Pick a victim whose stage bodies provably run (retained end-to-end):
    // the fault plan fires *before* the stage body, so an item it
    // permanently faults would be quarantined organically without ever
    // reaching the abort.
    let probe = coachlm::runtime::Executor::new(chaos_config(seed, threads))
        .run(&chaos_stages(), pairs.clone());
    let victim = probe
        .items
        .iter()
        .position(|i| i.retained)
        .expect("some item survives the probe run");
    pairs[victim]
        .instruction
        .push_str(&format!(" {POISON_MARK}"));
    let victim_id = pairs[victim].id;
    let opts = SuperviseOptions {
        max_restarts: 1,
        worker_env: vec![(ENV_POISON.to_string(), "1".to_string())],
        ..SuperviseOptions::default()
    };
    let out = run_supervised(seed, threads, &pairs, shards, "poison", &opts);

    // The culprit — and only the culprit — is quarantined, with the
    // supervisor's structured failure record.
    let poisoned: Vec<_> = out
        .quarantine
        .items
        .iter()
        .filter(|q| q.failure.stage == "supervise")
        .collect();
    assert_eq!(poisoned.len(), 1, "exactly one poison quarantine");
    assert_eq!(poisoned[0].pair.id, victim_id);
    assert_eq!(poisoned[0].failure.kind, FailureKind::Fatal);
    assert!(poisoned[0].failure.error.contains("poison"));
    assert!(poisoned[0].failure.attempts >= 1);

    // The run completed: every input item is accounted for exactly once.
    assert_eq!(out.output.items.len(), pairs.len());
    let retained = out.output.retained().count();
    let dropped = out.output.dropped().count();
    let quarantined = out.output.quarantined().count();
    assert_eq!(retained + dropped + quarantined, pairs.len());
    let ids: BTreeSet<u64> = out.output.items.iter().map(|i| i.pair.id).collect();
    assert_eq!(ids.len(), pairs.len(), "no item lost or duplicated");

    // Supervision surfaced the ordeal: the poisoned shard burned its
    // budget, was abandoned, and records the bisection.
    let sup = out
        .supervision
        .iter()
        .find(|s| s.poisoned > 0)
        .expect("some shard recorded the poison");
    assert!(sup.abandoned);
    assert_eq!(sup.poisoned, 1);
    assert!(sup.restarts >= 1, "restarts were burned before bisection");
    let survivor_credit: u32 = out.supervision.iter().map(|s| s.failed_over_in).sum();
    assert_eq!(survivor_credit, 1, "the failover went to a survivor");
}

/// `sync_every` tail-loss bound: after a kill, the worker journal on disk
/// trails the parent's received frame count by at most `sync_every`
/// records — items are re-executed on restart, never lost — and a rerun
/// in the same dir resumes from that journal.
fn sync_every_bounds_tail_loss() {
    let (seed, threads, shards) = (0x5E1, 1, 2);
    let sync_every = 4usize;
    let pairs = chaos_pairs(30, seed);
    let gold = gold_digest(seed, threads, &pairs, shards);
    let kill_at = 9u64;
    let opts = SuperviseOptions {
        sync_every,
        max_restarts: 0,
        chaos: ChaosPlan {
            worker_kills: vec![WorkerKill {
                shard: 0,
                attempt: 0,
                after_frames: kill_at,
                mode: KillMode::Boundary,
            }],
            parent_kills: Vec::new(),
        },
        ..SuperviseOptions::default()
    };
    let dir = temp_dir("tail-loss");
    let out = run_sharded_process(
        factory,
        CHAOS_CHAIN,
        &encode_chaos(seed, threads),
        StreamSource::batch(pairs.clone()),
        shards,
        &dir,
        &opts,
    )
    .expect("supervised run with failover");
    // max_restarts = 0: the kill exhausts shard 0's budget, failover
    // finishes its partition, and the run still converges.
    assert_eq!(out.output.digest(), gold);
    assert!(out.supervision[0].abandoned);

    let received = out.supervision[0].frames_by_attempt[0];
    assert_eq!(received, kill_at, "parent saw exactly the pre-kill frames");
    let journal = Journal::open(dir.join(format!("worker-shard-0-of-{shards}.wal")))
        .expect("reopen the dead worker's journal");
    let durable = journal.committed() as u64;
    assert!(
        durable <= received,
        "disk ({durable}) never runs ahead of the pipe ({received})"
    );
    assert!(
        received - durable <= sync_every as u64,
        "tail loss {} exceeds sync_every {sync_every}",
        received - durable
    );
    drop(journal);

    // Rerun in the same dir without chaos: shard 0's worker resumes from
    // its journal (replaying the durable prefix) and converges.
    let rerun = run_sharded_process(
        factory,
        CHAOS_CHAIN,
        &encode_chaos(seed, threads),
        StreamSource::batch(pairs),
        shards,
        &dir,
        &SuperviseOptions {
            sync_every,
            ..SuperviseOptions::default()
        },
    )
    .expect("rerun in the same dir");
    assert_eq!(rerun.output.digest(), gold, "journal-resumed rerun");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pipeline integration: `run_batch_supervised` — worker processes
/// re-deriving the coach from its training spec — matches the in-process
/// sharded journaled pipeline and recovers across a worker kill.
fn run_batch_supervised_matches_sharded() {
    use coachlm::data::generator::{generate, GeneratorConfig};
    let spec = BatchJobSpec {
        seed: 0xBA7C,
        threads: 2,
        coach: Some(CoachTrainSpec {
            seed: 9,
            pairs: 400,
        }),
    };
    let (raw, _) = generate(&GeneratorConfig::small(90, 21));
    let shards = 2;

    let coach = trained_coach(9, 400);
    let config = ExecutorConfig::new(spec.seed).threads(spec.threads as usize);
    let dir = temp_dir("pipeline-gold");
    let gold = run_batch_sharded_journaled(Some(&coach), &raw, &config, shards, &dir)
        .expect("in-process pipeline gold");
    let _ = std::fs::remove_dir_all(&dir);

    let dir = temp_dir("pipeline-supervised");
    let opts = SuperviseOptions {
        chaos: ChaosPlan {
            worker_kills: vec![WorkerKill {
                shard: 1,
                attempt: 0,
                after_frames: 5,
                mode: KillMode::Boundary,
            }],
            parent_kills: Vec::new(),
        },
        ..SuperviseOptions::default()
    };
    let supervised =
        run_batch_supervised(&spec, &raw, shards, &dir, &opts).expect("supervised pipeline");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        supervised.report.output.pairs, gold.report.output.pairs,
        "supervised pipeline output diverged"
    );
    assert_eq!(supervised.report.human_revised, gold.report.human_revised);
    assert_eq!(supervised.report.quarantined, gold.report.quarantined);
    assert_eq!(supervised.report.person_days, gold.report.person_days);
    assert_eq!(supervised.supervision.len(), shards);
    assert_eq!(supervised.supervision[1].restarts, 1, "the kill restarted");
}

/// CI matrix entry point: one supervised-vs-in-process cell driven by
/// `COACHLM_SUPERVISE_SEED` / `COACHLM_SUPERVISE_SHARDS` /
/// `COACHLM_SUPERVISE_KILL` (early | late | none).
fn supervise_matrix_cell() {
    let seed: u64 = std::env::var("COACHLM_SUPERVISE_SEED")
        .expect("COACHLM_SUPERVISE_SEED")
        .parse()
        .expect("seed must be a u64");
    let shards: usize = std::env::var("COACHLM_SUPERVISE_SHARDS")
        .expect("COACHLM_SUPERVISE_SHARDS")
        .parse()
        .expect("shards must be a usize");
    let kill = std::env::var("COACHLM_SUPERVISE_KILL").expect("COACHLM_SUPERVISE_KILL");
    let threads = 2u32;
    let pairs = chaos_pairs(32, seed);
    let worker_kills = match kill.as_str() {
        "none" => Vec::new(),
        "early" => vec![WorkerKill {
            shard: 0,
            attempt: 0,
            after_frames: 1,
            mode: KillMode::Boundary,
        }],
        "late" => {
            // Content-hash partitioning is uneven: learn shard 0's actual
            // frame count from a clean probe run so the kill lands inside
            // its stream rather than past the end of it.
            let probe = run_supervised(
                seed,
                threads,
                &pairs,
                shards,
                &format!("matrix-probe-{seed}-{shards}"),
                &SuperviseOptions::default(),
            );
            let frames = probe.supervision[0].frames_by_attempt[0];
            vec![WorkerKill {
                shard: 0,
                attempt: 0,
                after_frames: frames.saturating_sub(1).max(1),
                mode: KillMode::MidFrame,
            }]
        }
        other => panic!("unknown COACHLM_SUPERVISE_KILL `{other}`"),
    };
    let killed = !worker_kills.is_empty();
    let opts = SuperviseOptions {
        chaos: ChaosPlan {
            worker_kills,
            parent_kills: Vec::new(),
        },
        ..SuperviseOptions::default()
    };
    let gold = gold_digest(seed, threads, &pairs, shards);
    let out = run_supervised(
        seed,
        threads,
        &pairs,
        shards,
        &format!("matrix-{seed}-{shards}-{kill}"),
        &opts,
    );
    assert_eq!(out.output.digest(), gold, "matrix cell diverged");
    if killed {
        assert!(out.supervision[0].restarts >= 1, "matrix kill must restart");
    }
    println!("supervise_matrix_cell seed={seed} shards={shards} kill={kill} ... ok");
}

fn main() {
    // Must run before anything touches stdout: worker re-invocations of
    // this binary speak the frame protocol on stdout and never return.
    worker_boot(factory);

    if std::env::var_os("COACHLM_SUPERVISE_SEED").is_some() {
        supervise_matrix_cell();
        return;
    }

    let tests: &[(&str, fn())] = &[
        ("clean_run_matches_in_process", clean_run_matches_in_process),
        (
            "kill_at_every_frame_converges",
            kill_at_every_frame_converges,
        ),
        ("corrupt_frame_is_a_crash", corrupt_frame_is_a_crash),
        ("parent_kill_converges", parent_kill_converges),
        ("proptest_digest_convergence", proptest_digest_convergence),
        (
            "poison_bisection_quarantines_the_culprit",
            poison_bisection_quarantines_the_culprit,
        ),
        ("sync_every_bounds_tail_loss", sync_every_bounds_tail_loss),
        (
            "run_batch_supervised_matches_sharded",
            run_batch_supervised_matches_sharded,
        ),
    ];
    let only = std::env::var("COACHLM_ONLY").ok();
    println!("\nrunning {} tests", tests.len());
    for (name, test) in tests {
        if let Some(filter) = &only {
            if !name.contains(filter.as_str()) {
                continue;
            }
        }
        test();
        println!("test {name} ... ok");
    }
    println!(
        "\ntest result: ok. {} passed; 0 failed (supervise chaos harness)\n",
        tests.len()
    );
}
