//! Golden regression tests: paper-shape numbers from a fixed-seed run,
//! compared against checked-in JSON under `results/golden/`.
//!
//! Every metric in the snapshot is deterministic (counts, shares, and
//! person-day ratios — never wall-clock), so the comparison is exact: any
//! drift in the generator, reviser, coach, rater, pipeline accounting, or
//! the executor's fault layer shows up as a diff against the golden file.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```text
//! COACHLM_BLESS=1 cargo test --test golden
//! ```

use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::infer::revise_dataset;
use coachlm::core::pipeline::compare_deployment;
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::data::pair::Dataset;
use coachlm::expert::filter::preliminary_filter;
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::ExpertReviser;
use coachlm::judge::chatgpt::ChatGptRater;
use coachlm::runtime::{ExecutorConfig, FaultPlan, RetryPolicy, Schedule};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Duration;

/// The snapshot. Field names are the golden file's JSON keys; adding a
/// field is a (blessed) golden change by construction.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenMetrics {
    /// Share of pairs the ChatGPT rater scores above 4.5 before revision
    /// (Table VII/VIII baseline).
    share_above_4_5_before: f64,
    /// The same share after CoachLM revision — the paper's headline uplift.
    share_above_4_5_after: f64,
    /// Pairs whose response changed under revision.
    responses_changed: usize,
    /// Pairs whose instruction changed under revision.
    instructions_changed: usize,
    /// Invalid revisions replaced with originals (§III-B1).
    replaced_invalid: usize,
    /// Training-leakage pairs kept as originals (§III-B1).
    leakage_skipped: usize,
    /// Fig 6 deployment efficiency gain (paper: net 15–20 %).
    efficiency_gain: f64,
    /// Manual-batch throughput (pairs/person-day, paper ≈80).
    manual_pairs_per_person_day: f64,
    /// Assisted-batch throughput (pairs/person-day, paper ≈100).
    assisted_pairs_per_person_day: f64,
    /// Quarantined pairs in the fixed-seed chaos batch.
    chaos_quarantined: usize,
    /// Retry attempts in the fixed-seed chaos batch.
    chaos_retries: u64,
    /// Output size of the fixed-seed chaos batch.
    chaos_output_len: usize,
}

const SEED: u64 = 0x601D;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("golden")
        .join("paper_shapes.json")
}

fn rated_share(rater: &ChatGptRater, d: &Dataset) -> f64 {
    let above = d
        .iter()
        .filter(|p| rater.rate(p.id, &p.instruction, &p.response) > 4.5)
        .count();
    above as f64 / d.len() as f64
}

fn compute_metrics() -> GoldenMetrics {
    let (train, _) = generate(&GeneratorConfig::small(2000, SEED));
    let kept = preliminary_filter(&train, SEED).kept;
    let records = ExpertReviser::new(SEED).revise_dataset(&ExpertPool::paper_pool(), &train, &kept);
    let coach = CoachLm::train(CoachConfig::default(), &records);

    let (alpaca, _) = generate(&GeneratorConfig::small(1500, SEED ^ 0xA1));
    let revised = revise_dataset(&coach, &alpaca, &ExecutorConfig::new(SEED).threads(4));
    let rater = ChatGptRater::new(SEED);

    let (raw, _) = generate(&GeneratorConfig::small(1200, SEED ^ 0xDE));
    let cmp = compare_deployment(&coach, &raw, &ExecutorConfig::new(SEED).threads(4))
        .expect("pipeline chain carries the expert-annotate stage");

    let chaos = coachlm::core::pipeline::run_batch(
        Some(&coach),
        &raw,
        &ExecutorConfig::new(SEED)
            .threads(4)
            .schedule(Schedule::Dynamic)
            .fault_plan(FaultPlan::new(29).transient(0.2).permanent(0.05))
            .retry_policy(RetryPolicy::new(3, Duration::from_millis(10))),
    )
    .expect("chaos batch still reports");

    GoldenMetrics {
        share_above_4_5_before: rated_share(&rater, &alpaca),
        share_above_4_5_after: rated_share(&rater, &revised.dataset),
        responses_changed: revised.responses_changed,
        instructions_changed: revised.instructions_changed,
        replaced_invalid: revised.replaced_invalid,
        leakage_skipped: revised.leakage_skipped,
        efficiency_gain: cmp.efficiency_gain(),
        manual_pairs_per_person_day: cmp.manual.pairs_per_person_day,
        assisted_pairs_per_person_day: cmp.assisted.pairs_per_person_day,
        chaos_quarantined: chaos.quarantined,
        chaos_retries: chaos.retries,
        chaos_output_len: chaos.output.len(),
    }
}

#[test]
fn metrics_match_golden_snapshot() {
    let metrics = compute_metrics();

    // The snapshot must stay inside the paper's qualitative bands even when
    // blessed, so a regeneration can't silently ratify a shape regression.
    assert!(
        metrics.share_above_4_5_after > metrics.share_above_4_5_before + 0.3,
        "revision must massively lift the >4.5 share (Table VII/VIII): {} -> {}",
        metrics.share_above_4_5_before,
        metrics.share_above_4_5_after
    );
    assert!(
        (0.08..0.45).contains(&metrics.efficiency_gain),
        "Fig 6 efficiency gain out of band: {}",
        metrics.efficiency_gain
    );
    assert!(metrics.chaos_quarantined > 0 && metrics.chaos_retries > 0);

    let path = golden_path();
    if std::env::var("COACHLM_BLESS").as_deref() == Ok("1") {
        let json = serde_json::to_string_pretty(&metrics).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run COACHLM_BLESS=1 cargo test --test golden",
            path.display()
        )
    });
    let golden: GoldenMetrics = serde_json::from_str(&text).unwrap();
    assert_eq!(
        metrics,
        golden,
        "fixed-seed metrics drifted from {}; if intentional, regenerate with COACHLM_BLESS=1",
        path.display()
    );
}
