//! Allocation accounting for the ranking and scoring hot paths.
//!
//! The acceptance criterion for the allocation-free hot paths is literal:
//! after warm-up, `WordDistance::distance` and `NgramLm::prob` must perform
//! **zero** heap allocations per query. A counting `#[global_allocator]`
//! makes that measurable instead of aspirational.
//!
//! Counting is gated on a thread-local flag set only around the measured
//! closure: the allocator hook is process-global, and the libtest harness's
//! main thread occasionally allocates (channel wakeups) while a test runs,
//! which must not be attributed to the single-threaded hot path. For the
//! same reason this file holds a single `#[test]` on purpose.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use coachlm::lm::ngram_model::NgramLm;
use coachlm::text::editdist::WordDistance;
use coachlm::text::intern::Sym;

/// Wraps the system allocator, counting every `alloc`/`realloc` call made
/// by the thread currently inside [`allocations`].
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// True only on the measuring thread, only inside [`allocations`].
    ///
    /// Const-initialized `Cell<bool>` compiles to a plain TLS slot read:
    /// no lazy init and no allocation, so it is safe to touch from inside
    /// the allocator itself.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

fn count_if_measuring() {
    // `try_with` rather than `with`: allocations during thread teardown
    // (after the TLS slot is gone) should be ignored, not panic.
    if MEASURING.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_measuring();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_measuring();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it made on this thread.
fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let out = f();
    MEASURING.with(|m| m.set(false));
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

/// A repetitive ~`n`-word text, long enough to cross the 64-word block
/// boundary of the bit-parallel kernel.
fn long_text(n: usize, salt: &str) -> String {
    let words = ["please", "revise", "the", "instruction", salt, "carefully"];
    (0..n)
        .map(|i| words[i % words.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn hot_paths_allocate_nothing_after_warm_up() {
    // --- word-level edit distance -------------------------------------
    let a = long_text(200, "alpha");
    let b = long_text(180, "beta");
    let (short_a, short_b) = ("keep the response concise", "keep every response concise");

    let mut wd = WordDistance::new();
    // Warm-up: populates the tokenisation memo and sizes the Myers scratch.
    let warm_long = wd.distance(&a, &b);
    let warm_short = wd.distance(short_a, short_b);

    let (allocs, d) = allocations(|| {
        let mut total = 0usize;
        for _ in 0..32 {
            total += wd.distance(black_box(&a), black_box(&b));
            total += wd.distance(black_box(short_a), black_box(short_b));
            total += wd.distance(black_box(&b), black_box(&a));
        }
        total
    });
    assert_eq!(d, 32 * (2 * warm_long + warm_short));
    assert_eq!(
        allocs, 0,
        "WordDistance::distance allocated {allocs} times after warm-up"
    );

    // --- n-gram probability scoring -----------------------------------
    let m = NgramLm::train(
        3,
        &[
            "the cat sat on the mat",
            "the cat ran to the door",
            "the dog sat on the rug",
        ],
    );
    let ctx = m.vocab().encode_text("the cat sat on the mat");
    let warm: f64 = (1..ctx.len()).map(|i| m.prob(&ctx[..i], ctx[i])).sum();

    let (allocs, p) = allocations(|| {
        let mut total = 0.0f64;
        for _ in 0..64 {
            for i in 1..ctx.len() {
                total += m.prob(black_box(&ctx[..i]), black_box(ctx[i]));
            }
            // Unseen symbols back off through every order without a buffer.
            total += m.prob(black_box(&ctx[..2]), black_box(Sym(u32::MAX)));
        }
        total
    });
    assert!(p > 64.0 * warm, "probabilities should accumulate: {p}");
    assert_eq!(
        allocs, 0,
        "NgramLm::prob allocated {allocs} times after warm-up"
    );
}
