//! Chaos suite for the executor's fault-tolerance layer.
//!
//! Properties pinned here, over the production stage chains:
//!
//! * **Partition** — for any seeded [`FaultPlan`], every input item ends in
//!   exactly one of retained / dropped / quarantined, and the three counts
//!   sum to the input size.
//! * **Invariance** — the faulted result (pairs, tags, dispositions,
//!   failure records, retry/quarantine/fault counters, backoff time) is
//!   identical across 1..=16 worker threads and both schedules.
//! * **Transparency** — a zero-fault plan produces output byte-identical
//!   to a run with no plan configured at all, and items that survive
//!   transient faults via retries are byte-identical to the unfaulted run.
//!
//! `fault_matrix_cell` is the CI entry point: `scripts/ci.sh` runs it under
//! `COACHLM_FAULT_SEED` × `COACHLM_SCHEDULE` to sweep the fault matrix.

use std::sync::OnceLock;
use std::time::Duration;

use coachlm::core::baselines::CleanStage;
use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::infer::CoachReviseStage;
use coachlm::core::pipeline::{run_batch, ExpertAnnotateStage};
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::data::pair::Dataset;
use coachlm::expert::filter::{preliminary_filter, PreliminaryFilterStage};
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::ExpertReviser;
use coachlm::runtime::{
    ChainOutput, Disposition, Executor, ExecutorConfig, FaultPlan, RetryPolicy, Schedule, Stage,
};
use proptest::prelude::*;

struct Fixtures {
    coach: CoachLm,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let (train, _) = generate(&GeneratorConfig::small(600, 0xFA11));
        let kept = preliminary_filter(&train, 0xFA11).kept;
        let records =
            ExpertReviser::new(0xFA11).revise_dataset(&ExpertPool::paper_pool(), &train, &kept);
        Fixtures {
            coach: CoachLm::train(CoachConfig::default(), &records),
        }
    })
}

/// Production chains covering the mutating, dropping, and pass-through
/// stage shapes (drops matter: the partition must separate them from
/// quarantines).
fn chain(sel: u8, f: &'static Fixtures) -> Vec<Box<dyn Stage + 'static>> {
    match sel % 3 {
        0 => vec![Box::new(CleanStage)],
        1 => vec![
            Box::new(CleanStage),
            Box::new(CoachReviseStage::new(&f.coach)),
            Box::new(ExpertAnnotateStage::new(7, true)),
        ],
        _ => vec![
            Box::new(PreliminaryFilterStage),
            Box::new(CoachReviseStage::new(&f.coach)),
        ],
    }
}

fn faulty_config(
    chain_seed: u64,
    threads: usize,
    schedule: Schedule,
    plan: FaultPlan,
) -> ExecutorConfig {
    ExecutorConfig::new(chain_seed)
        .threads(threads)
        .schedule(schedule)
        .fault_plan(plan)
        .retry_policy(RetryPolicy::new(3, Duration::from_millis(10)))
}

fn run_chaos(
    sel: u8,
    dataset: &Dataset,
    chain_seed: u64,
    threads: usize,
    schedule: Schedule,
    plan: FaultPlan,
) -> ChainOutput {
    let stages = chain(sel, fixtures());
    Executor::new(faulty_config(chain_seed, threads, schedule, plan)).run_dataset(&stages, dataset)
}

/// The partition property: counting by disposition covers every input item
/// exactly once, report tallies agree with item state, and quarantined
/// items carry coherent failure records.
fn assert_partition(out: &ChainOutput, input_len: usize) -> Result<(), proptest::TestCaseError> {
    prop_assert_eq!(out.items.len(), input_len);
    let retained = out.retained().count();
    let dropped = out.dropped().count();
    let quarantined = out.quarantined().count();
    prop_assert_eq!(retained + dropped + quarantined, input_len);
    for item in &out.items {
        let by_state = match item.disposition() {
            Disposition::Retained => item.retained && item.failure.is_none(),
            Disposition::Dropped => !item.retained && item.failure.is_none(),
            Disposition::Quarantined => !item.retained && item.failure.is_some(),
        };
        prop_assert!(by_state, "inconsistent terminal state for {}", item.pair.id);
    }
    prop_assert_eq!(out.total_quarantined(), quarantined);
    for item in out.quarantined() {
        let rec = item.failure.as_ref().unwrap();
        prop_assert!(rec.attempts >= 1);
        prop_assert!(!rec.error.is_empty());
        prop_assert!(item.has_tag(&format!("quarantined:{}", rec.stage)));
    }
    Ok(())
}

fn assert_same(a: &ChainOutput, b: &ChainOutput) -> Result<(), proptest::TestCaseError> {
    prop_assert_eq!(a.items.len(), b.items.len());
    for (x, y) in a.items.iter().zip(&b.items) {
        prop_assert_eq!(&x.pair, &y.pair);
        prop_assert_eq!(x.retained, y.retained);
        prop_assert_eq!(&x.tags, &y.tags);
        prop_assert_eq!(&x.failure, &y.failure);
    }
    prop_assert_eq!(a.reports.len(), b.reports.len());
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        prop_assert_eq!(&ra.stage, &rb.stage);
        prop_assert_eq!(ra.items_in, rb.items_in);
        prop_assert_eq!(ra.items_out, rb.items_out);
        prop_assert_eq!(ra.quarantined, rb.quarantined);
        prop_assert_eq!(ra.retries, rb.retries);
        prop_assert_eq!(ra.faults_injected, rb.faults_injected);
        prop_assert_eq!(ra.backoff_time, rb.backoff_time);
        prop_assert_eq!(&ra.counters, &rb.counters);
    }
    Ok(())
}

proptest! {
    #[test]
    fn any_fault_plan_partitions_the_input(
        size in 1usize..150,
        data_seed in 0u64..500,
        chain_seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        transient in 0.0f64..0.4,
        permanent in 0.0f64..0.15,
        threads in 1usize..=16,
        sel in 0u8..3,
    ) {
        let (dataset, _) = generate(&GeneratorConfig::small(size, data_seed));
        let plan = FaultPlan::new(fault_seed)
            .transient(transient)
            .permanent(permanent)
            .latency(0.05, Duration::from_millis(2));
        let out = run_chaos(sel, &dataset, chain_seed, threads, Schedule::Dynamic, plan);
        assert_partition(&out, dataset.len())?;
    }

    #[test]
    fn faulted_runs_replicate_across_threads_and_schedules(
        size in 1usize..120,
        data_seed in 0u64..500,
        chain_seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        threads in 2usize..=16,
        sel in 0u8..3,
    ) {
        let (dataset, _) = generate(&GeneratorConfig::small(size, data_seed));
        let plan = FaultPlan::new(fault_seed)
            .transient(0.25)
            .permanent(0.05);
        let baseline = run_chaos(sel, &dataset, chain_seed, 1, Schedule::Static, plan.clone());
        for schedule in [Schedule::Static, Schedule::Dynamic] {
            let run = run_chaos(sel, &dataset, chain_seed, threads, schedule, plan.clone());
            assert_same(&run, &baseline)?;
        }
    }

    #[test]
    fn zero_fault_plan_is_transparent(
        size in 1usize..120,
        data_seed in 0u64..500,
        chain_seed in 0u64..10_000,
        threads in 1usize..=8,
        sel in 0u8..3,
    ) {
        let (dataset, _) = generate(&GeneratorConfig::small(size, data_seed));
        // A configured-but-inert plan and retry policy must not perturb the
        // run relative to a default config (no plan at all).
        let stages = chain(sel, fixtures());
        let plain = Executor::new(ExecutorConfig::new(chain_seed).threads(threads))
            .run_dataset(&stages, &dataset);
        let inert = run_chaos(sel, &dataset, chain_seed, threads, Schedule::Dynamic,
                              FaultPlan::new(9));
        assert_same(&inert, &plain)?;
        prop_assert_eq!(inert.total_retries(), 0);
        prop_assert_eq!(inert.total_quarantined(), 0);
    }

    #[test]
    fn transient_survivors_match_the_clean_run(
        size in 1usize..100,
        data_seed in 0u64..500,
        chain_seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        sel in 0u8..3,
    ) {
        let (dataset, _) = generate(&GeneratorConfig::small(size, data_seed));
        // Transient-only plan: every non-quarantined item retried its way
        // through, and must end up exactly as in the unfaulted run (stage
        // RNG is keyed per (stage, item), not per attempt).
        let plan = FaultPlan::new(fault_seed).transient(0.3);
        let faulted = run_chaos(sel, &dataset, chain_seed, 4, Schedule::Dynamic, plan);
        let stages = chain(sel, fixtures());
        let clean = Executor::new(ExecutorConfig::new(chain_seed).threads(4))
            .run_dataset(&stages, &dataset);
        for (f, c) in faulted.items.iter().zip(&clean.items) {
            if f.failure.is_none() {
                prop_assert_eq!(&f.pair, &c.pair);
                prop_assert_eq!(f.retained, c.retained);
            }
        }
    }
}

#[test]
fn pipeline_reports_degraded_throughput_under_faults() {
    let f = fixtures();
    let (raw, _) = generate(&GeneratorConfig::small(400, 91));
    let healthy = run_batch(Some(&f.coach), &raw, &ExecutorConfig::new(5).threads(4)).unwrap();
    let degraded = run_batch(
        Some(&f.coach),
        &raw,
        &faulty_config(
            5,
            4,
            Schedule::Dynamic,
            FaultPlan::new(17).transient(0.2).permanent(0.04),
        ),
    )
    .unwrap();
    assert_eq!(healthy.quarantined, 0);
    assert!(degraded.quarantined > 0, "permanent faults must quarantine");
    assert!(degraded.retries > 0, "transient faults must retry");
    assert_eq!(
        degraded.output.len() + degraded.dropped + degraded.quarantined,
        raw.len(),
        "pipeline accounting must cover every raw pair"
    );
    assert!(degraded.output.len() < healthy.output.len());
}

/// One cell of the CI fault matrix: `COACHLM_FAULT_SEED` picks the plan
/// seed and `COACHLM_SCHEDULE` the schedule; the cell checks the partition
/// and thread-invariance properties at a fixed, CI-sized workload.
#[test]
fn fault_matrix_cell() {
    let fault_seed: u64 = std::env::var("COACHLM_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(11);
    let schedule = match std::env::var("COACHLM_SCHEDULE").as_deref() {
        Ok("static") => Schedule::Static,
        _ => Schedule::Dynamic,
    };
    let (dataset, _) = generate(&GeneratorConfig::small(250, 0xCE11));
    let plan = FaultPlan::new(fault_seed)
        .transient(0.2)
        .permanent(0.05)
        .latency(0.1, Duration::from_millis(1));
    for sel in 0u8..3 {
        let baseline = run_chaos(sel, &dataset, 0xC1, 1, schedule, plan.clone());
        assert_partition(&baseline, dataset.len()).unwrap();
        for threads in [2, 8] {
            let run = run_chaos(sel, &dataset, 0xC1, threads, schedule, plan.clone());
            assert_same(&run, &baseline).unwrap();
        }
    }
}
