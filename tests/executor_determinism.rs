//! Property test for the executor's determinism contract: for any ported
//! stage chain, dataset size, chain seed, and worker count in 1..=16, the
//! parallel run produces item-for-item identical output, tags, retention,
//! and per-stage counters to the sequential (threads = 1) run.

use std::sync::OnceLock;

use coachlm::core::baselines::{AlpaGasusStage, CleanStage, HumanMergeStage};
use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::infer::CoachReviseStage;
use coachlm::core::pipeline::ExpertAnnotateStage;
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::data::pair::Dataset;
use coachlm::expert::filter::{preliminary_filter, PreliminaryFilterStage};
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::{ExpertReviseStage, ExpertReviser, RevisionRecord};
use coachlm::judge::chatgpt::{ChatGptRater, ChatGptRatingStage};
use coachlm::runtime::{ChainOutput, Executor, ExecutorConfig, Schedule, Stage};
use proptest::prelude::*;

/// Shared fixtures that are expensive to build (the proptest loop runs many
/// cases; training a coach per case would dominate the test).
struct Fixtures {
    coach: CoachLm,
    rater: ChatGptRater,
    reviser: ExpertReviser,
    pool: ExpertPool,
    kept: Vec<u64>,
    records: Vec<RevisionRecord>,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let (train, _) = generate(&GeneratorConfig::small(800, 0xF1C5));
        let kept = preliminary_filter(&train, 0xF1C5).kept;
        let reviser = ExpertReviser::new(0xF1C5);
        let records = reviser.revise_dataset(&ExpertPool::paper_pool(), &train, &kept);
        Fixtures {
            coach: CoachLm::train(CoachConfig::default(), &records),
            rater: ChatGptRater::new(0xF1C5),
            reviser,
            pool: ExpertPool::paper_pool(),
            kept,
            records,
        }
    })
}

/// Builds one of the ported stage chains. Every stage type that rides the
/// executor in production appears in at least one selector.
fn chain(sel: u8, f: &'static Fixtures) -> Vec<Box<dyn Stage + 'static>> {
    let record_refs: Vec<&RevisionRecord> = f.records.iter().collect();
    match sel % 6 {
        0 => vec![Box::new(CleanStage)],
        1 => vec![
            Box::new(CleanStage),
            Box::new(CoachReviseStage::new(&f.coach)),
        ],
        2 => vec![
            Box::new(CleanStage),
            Box::new(CoachReviseStage::new(&f.coach)),
            Box::new(ExpertAnnotateStage::new(7, true)),
        ],
        3 => vec![
            Box::new(PreliminaryFilterStage),
            Box::new(ExpertReviseStage::new(&f.reviser, &f.pool, &f.kept)),
        ],
        4 => vec![
            Box::new(AlpaGasusStage::new(&f.rater, 4.5)),
            Box::new(ChatGptRatingStage::new(&f.rater)),
        ],
        _ => vec![
            Box::new(HumanMergeStage::new(&record_refs, usize::MAX)),
            Box::new(ChatGptRatingStage::new(&f.rater)),
        ],
    }
}

fn run(sel: u8, dataset: &Dataset, seed: u64, threads: usize) -> ChainOutput {
    run_scheduled(sel, dataset, seed, threads, Schedule::Dynamic)
}

fn run_scheduled(
    sel: u8,
    dataset: &Dataset,
    seed: u64,
    threads: usize,
    schedule: Schedule,
) -> ChainOutput {
    let stages = chain(sel, fixtures());
    Executor::new(
        ExecutorConfig::new(seed)
            .threads(threads)
            .schedule(schedule),
    )
    .run_dataset(&stages, dataset)
}

fn assert_same(a: &ChainOutput, b: &ChainOutput) -> Result<(), proptest::TestCaseError> {
    prop_assert_eq!(a.items.len(), b.items.len());
    for (x, y) in a.items.iter().zip(&b.items) {
        prop_assert_eq!(&x.pair, &y.pair);
        prop_assert_eq!(x.retained, y.retained);
        prop_assert_eq!(&x.tags, &y.tags);
    }
    prop_assert_eq!(a.reports.len(), b.reports.len());
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        prop_assert_eq!(&ra.stage, &rb.stage);
        prop_assert_eq!(ra.items_in, rb.items_in);
        prop_assert_eq!(ra.items_out, rb.items_out);
        prop_assert_eq!(&ra.counters, &rb.counters);
    }
    Ok(())
}

proptest! {
    #[test]
    fn parallel_run_matches_sequential(
        size in 1usize..200,
        data_seed in 0u64..1000,
        chain_seed in 0u64..10_000,
        threads in 2usize..=16,
        sel in 0u8..6,
    ) {
        let (dataset, _) = generate(&GeneratorConfig::small(size, data_seed));
        let sequential = run(sel, &dataset, chain_seed, 1);
        let parallel = run(sel, &dataset, chain_seed, threads);
        assert_same(&parallel, &sequential)?;
    }

    #[test]
    fn static_and_dynamic_schedules_agree(
        size in 1usize..200,
        data_seed in 0u64..1000,
        chain_seed in 0u64..10_000,
        threads in 2usize..=16,
        sel in 0u8..6,
    ) {
        let (dataset, _) = generate(&GeneratorConfig::small(size, data_seed));
        let fixed = run_scheduled(sel, &dataset, chain_seed, threads, Schedule::Static);
        let dynamic = run_scheduled(sel, &dataset, chain_seed, threads, Schedule::Dynamic);
        assert_same(&dynamic, &fixed)?;
    }

    #[test]
    fn same_config_repeats_exactly(
        size in 1usize..100,
        chain_seed in 0u64..10_000,
        threads in 1usize..=16,
        sel in 0u8..6,
    ) {
        let (dataset, _) = generate(&GeneratorConfig::small(size, 7));
        let a = run(sel, &dataset, chain_seed, threads);
        let b = run(sel, &dataset, chain_seed, threads);
        assert_same(&a, &b)?;
    }
}
