//! Cross-crate integration: the full paper pipeline through the facade API.

use coachlm::core::baselines::{build_alpagasus, build_cleaned, build_human_merged};
use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::evaluate::evaluate;
use coachlm::core::infer::revise_dataset;
use coachlm::core::student::{tune_student, SkillParams};
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::data::pair::Dataset;
use coachlm::data::testsets::{TestSet, TestSetKind};
use coachlm::expert::filter::preliminary_filter;
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::{ExpertReviser, RevisionRecord};
use coachlm::judge::chatgpt::ChatGptRater;
use coachlm::judge::criteria::CriteriaEngine;
use coachlm::judge::pandalm::PandaLm;
use coachlm::runtime::ExecutorConfig;

struct World {
    dataset: Dataset,
    records: Vec<RevisionRecord>,
    coach: CoachLm,
    revised: Dataset,
}

fn build_world(n: usize, seed: u64) -> World {
    let (dataset, _) = generate(&GeneratorConfig::small(n, seed));
    let kept = preliminary_filter(&dataset, seed).kept;
    let records =
        ExpertReviser::new(seed).revise_dataset(&ExpertPool::paper_pool(), &dataset, &kept);
    let coach = CoachLm::train(CoachConfig::default(), &records);
    let revised =
        revise_dataset(&coach, &dataset, &ExecutorConfig::new(seed ^ 1).threads(4)).dataset;
    World {
        dataset,
        records,
        coach,
        revised,
    }
}

#[test]
fn pipeline_improves_dataset_quality_end_to_end() {
    let w = build_world(2500, 101);
    let rater = ChatGptRater::new(3);
    let before = rater.rate_dataset(&w.dataset);
    let after = rater.rate_dataset(&w.revised);
    // Fig 4 direction: mean rises, high-quality share rises sharply.
    assert!(
        after.mean > before.mean + 0.3,
        "{} -> {}",
        before.mean,
        after.mean
    );
    assert!(
        after.share_above_4_5 > before.share_above_4_5 * 2.5,
        "{} -> {}",
        before.share_above_4_5,
        after.share_above_4_5
    );
}

#[test]
fn coachlm_student_beats_alpaca_student() {
    let w = build_world(3000, 202);
    let test_set = TestSet::build(TestSetKind::CoachLm150, 5);
    let judge = PandaLm::new(7);
    let alpaca = tune_student("Alpaca", &w.dataset, SkillParams::default(), 9);
    let coachlm = tune_student("Alpaca-CoachLM", &w.revised, SkillParams::default(), 9);
    let a = evaluate(&alpaca, &test_set, &judge);
    let c = evaluate(&coachlm, &test_set, &judge);
    assert!(
        c.rates.wr1 > a.rates.wr1 + 0.05,
        "Alpaca {} vs CoachLM {}",
        a.rates,
        c.rates
    );
    assert!(c.rates.qs > a.rates.qs);
}

#[test]
fn human_merge_and_baselines_are_ordered() {
    let w = build_world(3000, 303);
    let test_set = TestSet::build(TestSetKind::PandaLm170, 2);
    let judge = PandaLm::new(4);
    let refs: Vec<&RevisionRecord> = w.records.iter().collect();
    let human = build_human_merged(&w.dataset, &refs, usize::MAX);
    // Compare on the pairs CoachLM actually revises: the §III-B1 leakage
    // rule keeps C_α originals, which at this test scale is ~11 % of the
    // dataset (paper scale: 1.3 %) — enough unrevised tail to drown the
    // merged-vs-revised ordering in the low-quality skill penalty.
    let trained: std::collections::HashSet<u64> = w.coach.trained_ids().iter().copied().collect();
    let strip = |d: &Dataset| {
        let mut out = Dataset::new(d.name.clone());
        out.pairs = d
            .pairs
            .iter()
            .filter(|p| !trained.contains(&p.id))
            .cloned()
            .collect();
        out
    };
    let seed = 11;
    let wr = |d: &Dataset| {
        evaluate(
            &tune_student("m", &strip(d), SkillParams::default(), seed),
            &test_set,
            &judge,
        )
        .rates
        .wr1
    };
    let alpaca = wr(&w.dataset);
    let merged = wr(&human);
    let revised = wr(&w.revised);
    assert!(merged >= alpaca - 0.01, "human {merged} vs alpaca {alpaca}");
    assert!(revised > merged, "coachlm {revised} vs human {merged}");
}

#[test]
fn alpagasus_loses_code_coverage_but_cleaned_keeps_it() {
    let w = build_world(4000, 404);
    let rater = ChatGptRater::new(5);
    let alpagasus = build_alpagasus(&w.dataset, &rater, 4.5);
    let cleaned = build_cleaned(&w.dataset);
    assert!(alpagasus.len() < w.dataset.len() / 2);
    assert_eq!(cleaned.len(), w.dataset.len());
    let code_share = |d: &Dataset| {
        d.iter().filter(|p| p.category.is_code()).count() as f64 / d.len().max(1) as f64
    };
    assert!(code_share(&alpagasus) < code_share(&w.dataset));
    assert!((code_share(&cleaned) - code_share(&w.dataset)).abs() < 1e-9);
}

#[test]
fn expert_records_meet_qc_and_coach_learns_from_them() {
    let w = build_world(1500, 505);
    assert!(!w.records.is_empty());
    for rec in &w.records {
        assert!(
            rec.final_scores.response >= 90.0,
            "record {} under QC bar: {:?}",
            rec.id,
            rec.final_scores
        );
    }
    assert!(w.coach.trained_on() > 0);
    assert!(w.coach.apply_probability() > 0.8);
}

#[test]
fn revised_dataset_has_no_detectable_unsafe_responses_left() {
    let w = build_world(2500, 606);
    let engine = CriteriaEngine::new();
    // Exclude the coach's own training pairs: the §III-B1 leakage rule keeps
    // their originals by design, and at this test scale (where the training
    // sample is the whole dataset) unsafe pairs rank high in C_α. At paper
    // scale the training subset is ~1.3 % of the dataset.
    let trained: std::collections::HashSet<u64> = w.coach.trained_ids().iter().copied().collect();
    let unsafe_count = |d: &Dataset| {
        d.iter()
            .filter(|p| !trained.contains(&p.id))
            .filter(|p| {
                engine
                    .analyze_response(&p.instruction, &p.response)
                    .unsafe_content
            })
            .count()
    };
    let unsafe_before = unsafe_count(&w.dataset);
    let unsafe_after = unsafe_count(&w.revised);
    assert!(unsafe_before > 0, "generator must plant unsafe responses");
    assert!(
        unsafe_after * 4 < unsafe_before.max(4),
        "revision must remove most unsafe content: {unsafe_before} -> {unsafe_after}"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = build_world(800, 707);
    let b = build_world(800, 707);
    assert_eq!(a.dataset, b.dataset);
    assert_eq!(a.revised, b.revised);
    assert_eq!(a.records.len(), b.records.len());
}
