//! Determinism, accounting, durability, and judging suite for the
//! strategy zoo (`coachlm::core::strategies`).
//!
//! Properties pinned here:
//!
//! * **Strategy determinism** — every registered strategy (CoachLM,
//!   Reflection, Self-Review, auto-evol, filtering, no-op) produces a
//!   digest-identical output across thread counts 1..=8, both schedules,
//!   and queue capacities, with transient/permanent/latency faults, a
//!   retry policy, and a breaker all active. The looping stages
//!   (`revise-until-pass`, `evolve`) are the interesting cases: their
//!   per-iteration RNG streams and fault rolls must not depend on worker
//!   interleaving.
//! * **Exact partition accounting** — each strategy's output is an exact
//!   retained/dropped/quarantined partition of its input, with the stage
//!   reports agreeing with the item-level dispositions, and the iteration
//!   budget never exceeded.
//! * **Kill-at-every-frame crash-resume** — a journaled Self-Review run
//!   truncated at every journal frame boundary (and inside frames)
//!   resumes to the uninterrupted digest: mid-loop state never leaks into
//!   the journal, because only committed items are framed.
//! * **Debiased judging** — the tournament verdict matrix is invariant
//!   under position swap and under relabeling/reordering of the
//!   contestants, over real strategy outputs.
//! * **Deadline × breaker × loop** — a latency storm on the looping
//!   Self-Review stage times out every pass, trips the breaker at an
//!   epoch boundary, and degrades the stage to passthrough, all without
//!   the iteration budget ever being exceeded.
//!
//! `tournament_matrix_cell` is the CI entry point: `scripts/ci.sh` runs it
//! under `COACHLM_TOURN_SEED` × `COACHLM_TOURN_SCHEDULE` ×
//! `COACHLM_TOURN_THREADS`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::strategies::{
    EvolveStage, ReviseUntilPassStage, SelfReviewStrategy, Strategy, StrategyZoo,
};
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::data::pair::Dataset;
use coachlm::expert::filter::preliminary_filter;
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::ExpertReviser;
use coachlm::judge::tournament::{run_tournament, Contestant, TournamentResult};
use coachlm::judge::PandaLm;
use coachlm::runtime::{
    BreakerPolicy, BreakerState, ChainOutput, Disposition, Executor, ExecutorConfig, FaultPlan,
    Journal, RetryPolicy, Schedule,
};
use proptest::prelude::*;

/// Seed namespacing the zoo's filtering rater across the whole suite.
const ZOO_SEED: u64 = 0x200_C0AC;

struct Fixtures {
    coach: CoachLm,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let (train, _) = generate(&GeneratorConfig::small(600, 0x57E4));
        let kept = preliminary_filter(&train, 0x57E4).kept;
        let records =
            ExpertReviser::new(0x57E4).revise_dataset(&ExpertPool::paper_pool(), &train, &kept);
        Fixtures {
            coach: CoachLm::train(CoachConfig::default(), &records),
        }
    })
}

fn zoo() -> StrategyZoo<'static> {
    StrategyZoo::standard(&fixtures().coach, ZOO_SEED)
}

fn dataset(n: usize, seed: u64) -> Dataset {
    let (d, _) = generate(&GeneratorConfig::small(n, seed));
    d
}

/// The chaos config: transient and permanent faults, deadline-busting
/// latency, retries, and a breaker — same shape as the streaming suite.
fn chaos_config(seed: u64, threads: usize, schedule: Schedule, queue: usize) -> ExecutorConfig {
    ExecutorConfig::new(seed)
        .threads(threads)
        .schedule(schedule)
        .queue_capacity(queue)
        .fault_plan(
            FaultPlan::new(seed ^ 0xFA)
                .transient(0.2)
                .permanent(0.05)
                .latency(0.3, Duration::from_secs(8)),
        )
        .retry_policy(RetryPolicy::new(3, Duration::from_millis(10)))
        .breaker(
            BreakerPolicy::new()
                .window(32)
                .trip_ratio(0.2)
                .min_failures(4)
                .cooldown_epochs(1)
                .probes(4),
        )
}

fn assert_same(a: &ChainOutput, b: &ChainOutput, what: &str) {
    assert_eq!(a.digest(), b.digest(), "{what}: digest diverged");
    assert_eq!(
        a.breaker_events, b.breaker_events,
        "{what}: breaker evolution diverged"
    );
    assert_eq!(a.items.len(), b.items.len(), "{what}");
    for (x, y) in a.items.iter().zip(&b.items) {
        assert_eq!(x.pair, y.pair, "{what}: item {}", x.index);
        assert_eq!(x.retained, y.retained, "{what}: item {}", x.index);
        assert_eq!(x.tags, y.tags, "{what}: item {}", x.index);
    }
}

proptest! {
    // The headline property: no knob of the execution substrate — thread
    // count, schedule, queue capacity — changes any strategy's output,
    // even with faults, retries, and a breaker active.
    #[test]
    fn strategy_digest_is_invariant_under_threads_queue_schedule(
        size in 1usize..80,
        data_seed in 0u64..1_000,
        chain_seed in 0u64..10_000,
        threads in 2usize..=8,
        queue in 1usize..128,
        dynamic in 0u8..2,
        strat in 0usize..6,
    ) {
        let d = dataset(size, data_seed);
        let z = zoo();
        let names = z.names();
        let name = names[strat % names.len()];
        let strategy = z.get(name).expect("registered strategy");
        let schedule = if dynamic == 1 { Schedule::Dynamic } else { Schedule::Static };
        let reference =
            strategy.run(&d, &chaos_config(chain_seed, 1, Schedule::Static, 64));
        let parallel =
            strategy.run(&d, &chaos_config(chain_seed, threads, schedule, queue));
        prop_assert_eq!(reference.digest(), parallel.digest());
        prop_assert_eq!(&reference.breaker_events, &parallel.breaker_events);
    }
}

/// Every strategy's output is an exact partition of the input, the stage
/// reports agree with the item dispositions, and looping stages never
/// exceed their iteration budgets — all under active fault injection.
#[test]
fn every_strategy_partitions_exactly_under_chaos() {
    let d = dataset(160, 0xACC7);
    for strategy in zoo().iter() {
        let out = strategy.run(&d, &chaos_config(0x99, 4, Schedule::Dynamic, 16));
        let retained = out.retained().count();
        let dropped = out.dropped().count();
        let quarantined = out.quarantined().count();
        assert_eq!(
            retained + dropped + quarantined,
            d.len(),
            "{}: partition must be exact",
            strategy.name()
        );
        assert_eq!(
            quarantined,
            out.total_quarantined(),
            "{}: item dispositions vs report quarantine tally",
            strategy.name()
        );
        for item in &out.items {
            // Disposition is a function of the terminal item state and
            // exactly one of the three holds.
            let disp = item.disposition();
            match disp {
                Disposition::Retained => assert!(item.retained && item.failure.is_none()),
                Disposition::Dropped => assert!(!item.retained && item.failure.is_none()),
                Disposition::Quarantined => assert!(!item.retained && item.failure.is_some()),
            }
        }
        for report in &out.reports {
            let budget = match report.stage.as_str() {
                ReviseUntilPassStage::NAME => u64::from(ReviseUntilPassStage::BUDGET),
                EvolveStage::NAME => u64::from(EvolveStage::BUDGET),
                _ => 1,
            };
            assert!(
                report.iterations <= report.items_in as u64 * budget,
                "{}/{}: iteration budget exceeded ({} > {} * {})",
                strategy.name(),
                report.stage,
                report.iterations,
                report.items_in,
                budget
            );
        }
    }
}

/// Without faults, the baselines account exactly: the no-op retains
/// everything untouched and filtering splits retained/dropped with no
/// quarantine.
#[test]
fn baseline_accounting_is_exact_without_faults() {
    let d = dataset(140, 0xBA5E);
    let z = zoo();
    let noop = z
        .get("noop")
        .expect("noop")
        .run(&d, &ExecutorConfig::new(7));
    assert_eq!(noop.retained().count(), d.len());
    assert_eq!(noop.dropped().count() + noop.quarantined().count(), 0);
    for (orig, item) in d.pairs.iter().zip(noop.items.iter()) {
        assert_eq!(orig, &item.pair, "noop must not rewrite pairs");
    }
    let filter = z
        .get("filter")
        .expect("filter")
        .run(&d, &ExecutorConfig::new(7));
    let report = filter.report("alpagasus-filter").expect("filter report");
    assert_eq!(filter.quarantined().count(), 0);
    assert_eq!(report.counter("kept") as usize, filter.retained().count());
    assert_eq!(report.counter("dropped") as usize, filter.dropped().count());
    assert_eq!(
        filter.retained().count() + filter.dropped().count(),
        d.len()
    );
    assert!(filter.dropped().count() > 0, "the 4.5 bar drops some pairs");
}

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_journal(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "coachlm-strategy-zoo-{}-{tag}-{n}.wal",
        std::process::id()
    ))
}

/// Journal frame boundaries: each frame is `len:u32le + crc:u64le +
/// payload`, so boundaries can be walked without decoding payloads.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut cuts = vec![0usize];
    let mut pos = 0usize;
    while pos + 12 <= bytes.len() {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let next = pos + 12 + len;
        if next > bytes.len() {
            break;
        }
        cuts.push(next);
        pos = next;
    }
    cuts
}

/// Kill-at-every-frame crash-resume for the looping Self-Review stage: a
/// journaled run truncated at *every* frame boundary — and mid-frame, to
/// model a torn write — must resume digest-identical to the uninterrupted
/// run. Mid-loop iteration state never reaches the journal (only
/// committed items are framed), so a crash between passes replays the
/// whole item and converges.
#[test]
fn self_review_crash_resume_kill_at_every_frame() {
    let seed = 0x5E1F;
    let d = dataset(40, seed);
    let strategy = SelfReviewStrategy::new();
    let stages = strategy.stages();

    let gold =
        Executor::new(chaos_config(seed, 1, Schedule::Static, 64)).run(&stages, d.pairs.clone());

    let path = temp_journal("self-review");
    let mut journal = Journal::create(&path)
        .expect("create journal")
        .sync_every(1);
    Executor::new(chaos_config(seed, 4, Schedule::Dynamic, 16))
        .run_journaled(&stages, d.pairs.clone(), &mut journal)
        .expect("journaled run");
    drop(journal);
    let bytes = std::fs::read(&path).expect("read journal back");

    let boundaries = frame_boundaries(&bytes);
    assert!(
        boundaries.len() > d.len() / 2,
        "expected roughly one frame per committed item, got {}",
        boundaries.len()
    );
    for &cut in &boundaries {
        // At the boundary, and torn mid-frame just after it.
        for len in [cut, (cut + 5).min(bytes.len())] {
            std::fs::write(&path, &bytes[..len]).expect("truncate journal");
            let mut journal = Journal::open(&path).expect("recover truncated journal");
            let resumed = Executor::new(chaos_config(seed, 3, Schedule::Static, 8))
                .run_journaled(&stages, d.pairs.clone(), &mut journal)
                .expect("resume");
            assert_same(&resumed, &gold, &format!("cut at {len}/{}", bytes.len()));
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Runs the whole zoo over `d` and returns named outputs.
fn zoo_outputs(d: &Dataset, config: &ExecutorConfig) -> Vec<(String, Dataset)> {
    zoo()
        .iter()
        .map(|s| (s.name().to_string(), s.dataset(d, config)))
        .collect()
}

fn tournament_of(outputs: &[(String, Dataset)], arena: &Dataset, seed: u64) -> TournamentResult {
    let contestants: Vec<Contestant<'_>> = outputs
        .iter()
        .map(|(name, dataset)| Contestant { name, dataset })
        .collect();
    run_tournament(&PandaLm::new(seed), arena, &contestants)
}

/// The debiasing regression: over real strategy outputs, the verdict
/// matrix is invariant under contestant reordering (relabeling) and every
/// cell is the exact mirror of its transpose (position swap).
#[test]
fn tournament_matrix_is_swap_and_relabeling_invariant() {
    let d = dataset(60, 0x70F7);
    let outputs = zoo_outputs(&d, &ExecutorConfig::new(3));
    let forward = tournament_of(&outputs, &d, 0x9D6E);

    let mut reversed = outputs.clone();
    reversed.reverse();
    let backward = tournament_of(&reversed, &d, 0x9D6E);
    assert_eq!(
        forward, backward,
        "relabeling/reordering changed the matrix"
    );

    let mut rotated = outputs.clone();
    rotated.rotate_left(2);
    assert_eq!(
        forward,
        tournament_of(&rotated, &d, 0x9D6E),
        "rotation changed the matrix"
    );

    for (i, a) in forward.names.iter().enumerate() {
        for (j, b) in forward.names.iter().enumerate() {
            if i == j {
                continue;
            }
            let ab = forward.counts(a, b).expect("cell");
            let ba = forward.counts(b, a).expect("mirror cell");
            assert_eq!(ab.win, ba.lose, "{a} vs {b}: swap broke wins");
            assert_eq!(ab.lose, ba.win, "{a} vs {b}: swap broke losses");
            assert_eq!(ab.tie, ba.tie, "{a} vs {b}: swap broke ties");
        }
    }

    // The paper's headline ordering survives the debiased protocol.
    let cell = forward.counts("coachlm", "filter").expect("cell");
    assert!(
        cell.win > cell.lose,
        "revision must beat filtering head-to-head (Table VII ordering)"
    );
}

/// Deadline × breaker × loop: a latency storm on the looping Self-Review
/// stage times out every pass. The breaker must trip at an epoch
/// boundary and degrade the stage to passthrough; the iteration budget
/// must hold throughout; and the whole evolution stays deterministic.
#[test]
fn latency_storm_trips_breaker_and_degrades_looping_stage() {
    let seed = 0x5708;
    let d = dataset(200, seed);
    let strategy = SelfReviewStrategy::new();
    let stages = strategy.stages();
    // Every attempt spikes past the 5s stage deadline: pure timeout storm.
    let config = |threads| {
        ExecutorConfig::new(seed)
            .threads(threads)
            .fault_plan(FaultPlan::new(seed ^ 0xFA).latency(1.0, Duration::from_secs(30)))
            .retry_policy(RetryPolicy::new(3, Duration::from_millis(10)))
            .breaker(
                BreakerPolicy::new()
                    .window(32)
                    .trip_ratio(0.2)
                    .min_failures(4)
                    .cooldown_epochs(1)
                    .probes(4),
            )
    };
    let out = Executor::new(config(4)).run(&stages, d.pairs.clone());

    let report = out.report(ReviseUntilPassStage::NAME).expect("report");
    assert!(report.timeouts > 0, "the storm must cause timeouts");
    assert!(
        out.breaker_events
            .iter()
            .any(|e| e.to == BreakerState::Open),
        "the breaker must trip under a pure timeout storm"
    );
    // Trips happen only at epoch boundaries: the recorded epoch numbers
    // are non-decreasing and each transition is a legal step.
    let mut last_epoch = 0usize;
    for e in &out.breaker_events {
        assert!(e.epoch >= last_epoch, "epochs must be non-decreasing");
        last_epoch = e.epoch;
        assert_ne!(e.from, e.to, "a transition must change state");
    }
    assert!(
        report.degraded > 0,
        "post-trip items must degrade to passthrough"
    );
    // Degraded passthrough means untouched text: at least one retained
    // item is bit-identical to its input.
    assert!(
        out.items
            .iter()
            .filter(|i| i.retained)
            .any(|i| i.pair == i.original),
        "degraded items pass through unrevised"
    );
    // The iteration budget holds even in the storm.
    assert!(
        report.iterations <= report.items_in as u64 * u64::from(ReviseUntilPassStage::BUDGET),
        "iteration budget exceeded under latency storm"
    );
    // And the whole evolution — trips, probes, degradations — is
    // deterministic across thread counts.
    let again = Executor::new(config(8)).run(&stages, d.pairs.clone());
    assert_same(&out, &again, "latency storm determinism");
}

/// CI tournament-matrix entry point: one cell per (seed, schedule,
/// threads), driven by environment variables; a plain `cargo test` skips
/// it. Each cell re-runs every strategy under chaos at the cell's config,
/// checks digests against the single-threaded static reference, and
/// asserts the resulting tournament matrix is identical to the
/// reference's.
#[test]
fn tournament_matrix_cell() {
    let (Ok(seed), Ok(schedule), Ok(threads)) = (
        std::env::var("COACHLM_TOURN_SEED"),
        std::env::var("COACHLM_TOURN_SCHEDULE"),
        std::env::var("COACHLM_TOURN_THREADS"),
    ) else {
        return;
    };
    let seed: u64 = seed.parse().expect("COACHLM_TOURN_SEED must be a u64");
    let threads: usize = threads
        .parse()
        .expect("COACHLM_TOURN_THREADS must be a usize");
    let schedule = match schedule.as_str() {
        "dynamic" => Schedule::Dynamic,
        _ => Schedule::Static,
    };

    let d = dataset(120, seed ^ 0x70_0E);
    let reference_cfg = chaos_config(seed, 1, Schedule::Static, 64);
    let cell_cfg = chaos_config(seed, threads, schedule, 16);
    for strategy in zoo().iter() {
        let reference = strategy.run(&d, &reference_cfg);
        let cell = strategy.run(&d, &cell_cfg);
        assert_same(
            &cell,
            &reference,
            &format!("{} {schedule:?} x{threads}", strategy.name()),
        );
    }
    let reference_outputs = zoo_outputs(&d, &reference_cfg);
    let cell_outputs = zoo_outputs(&d, &cell_cfg);
    assert_eq!(
        tournament_of(&reference_outputs, &d, seed),
        tournament_of(&cell_outputs, &d, seed),
        "tournament matrix must be execution-config invariant"
    );
}
