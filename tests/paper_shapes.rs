//! Shape assertions against the paper's headline results, at test scale.
//! (The full-scale numbers live in EXPERIMENTS.md; these tests pin the
//! qualitative shapes so regressions are caught by `cargo test`.)

use coachlm::core::alpha::select_alpha;
use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::expert::filter::{preliminary_filter, FilterReason};
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::{ExpertReviser, RevisionKind, RevisionRecord};
use coachlm::lm::backbone::BackboneKind;

fn records(n: usize, seed: u64) -> Vec<RevisionRecord> {
    let (d, _) = generate(&GeneratorConfig::small(n, seed));
    let kept = preliminary_filter(&d, seed).kept;
    ExpertReviser::new(seed).revise_dataset(&ExpertPool::paper_pool(), &d, &kept)
}

#[test]
fn table3_shape_exclusion_mix() {
    let (d, _) = generate(&GeneratorConfig::small(6000, 1));
    let out = preliminary_filter(&d, 2);
    // ~18% excluded; Invalid Input is the largest reason, Multi-modal the
    // smallest of the non-workload reasons (Table III).
    assert!((0.14..0.22).contains(&out.exclusion_ratio()));
    let ratio = |r: FilterReason| {
        out.excluded
            .iter()
            .filter(|(_, reason)| *reason == r)
            .count() as f64
            / out.excluded.len() as f64
    };
    assert!(ratio(FilterReason::InvalidInput) > ratio(FilterReason::BeyondExpertise));
    assert!(ratio(FilterReason::BeyondExpertise) > ratio(FilterReason::Safety));
    assert!(ratio(FilterReason::Safety) > ratio(FilterReason::MultiModal));
}

#[test]
fn table4_shape_revision_mix() {
    let recs = records(6000, 3);
    let share = |k: RevisionKind| {
        recs.iter().filter(|r| r.response_kind == Some(k)).count() as f64 / recs.len() as f64
    };
    // Expansion dominates; rewrites and adjustments are comparable; fact
    // corrections small; safety/other smallest (Table IV).
    let diversify = share(RevisionKind::DiversifyResponse);
    let rewrite = share(RevisionKind::RewriteResponse);
    let adjust = share(RevisionKind::AdjustResponse);
    let correct = share(RevisionKind::CorrectResponse);
    let other = share(RevisionKind::OtherResponse);
    assert!(
        diversify > rewrite,
        "diversify {diversify} rewrite {rewrite}"
    );
    assert!(diversify > adjust);
    assert!(rewrite > correct && adjust > correct);
    assert!(correct > other);
    // Instruction side: Adjust dominates, Diversify is smallest.
    let instr: Vec<_> = recs.iter().filter(|r| r.instruction_revised).collect();
    let ishare = |k: RevisionKind| {
        instr
            .iter()
            .filter(|r| r.instruction_kind == Some(k))
            .count() as f64
            / instr.len() as f64
    };
    assert!(ishare(RevisionKind::AdjustInstruction) > ishare(RevisionKind::RewriteInstruction));
    assert!(ishare(RevisionKind::RewriteInstruction) > ishare(RevisionKind::DiversifyInstruction));
}

#[test]
fn alpha_mechanism_shape() {
    let recs = records(4000, 4);
    // The edit-distance ranking is the alpha mechanism: the top tercile must
    // be substantially larger revisions than the bottom tercile.
    let ranked = select_alpha(&recs, 1.0);
    let wd = |r: &RevisionRecord| {
        coachlm::text::editdist::word_edit_distance(&r.original.response, &r.revised.response)
    };
    let top: f64 = ranked
        .iter()
        .take(recs.len() / 3)
        .map(|r| wd(r) as f64)
        .sum::<f64>()
        / (recs.len() / 3) as f64;
    let bottom: f64 = ranked
        .iter()
        .rev()
        .take(recs.len() / 3)
        .map(|r| wd(r) as f64)
        .sum::<f64>()
        / (recs.len() / 3) as f64;
    assert!(top > bottom * 4.0, "top {top} bottom {bottom}");

    // Copy noise: alpha = 1 carries copy mass, alpha = 0.3 does not; the
    // apply probability peaks at the selective alpha (Fig 5a mechanism).
    let a03 = CoachLm::train(
        CoachConfig {
            alpha: 0.3,
            ..Default::default()
        },
        &recs,
    );
    let a10 = CoachLm::train(
        CoachConfig {
            alpha: 1.0,
            ..Default::default()
        },
        &recs,
    );
    let a00 = CoachLm::train(
        CoachConfig {
            alpha: 0.0,
            ..Default::default()
        },
        &recs,
    );
    assert!(a03.adapter().copy_ratio() < 0.05);
    assert!(a10.adapter().copy_ratio() > 0.15);
    assert!(a03.apply_probability() > a10.apply_probability());
    assert!(a10.apply_probability() > a00.apply_probability());
}

#[test]
fn table11_shape_backbone_ordering() {
    let recs = records(2000, 5);
    let mut last = 0.0;
    for kind in BackboneKind::ALL {
        let coach = CoachLm::train(
            CoachConfig {
                backbone: kind,
                alpha: 1.0,
                ..Default::default()
            },
            &recs,
        );
        let p = coach.apply_probability();
        assert!(p >= last, "{:?} regressed: {p} < {last}", kind);
        last = p;
    }
}

#[test]
fn table1_pool_shape() {
    let pool = ExpertPool::paper_pool();
    assert_eq!(pool.experts.len(), 26);
    // Group A has 17 experts split into units of 6/6/5.
    let sizes: Vec<usize> = pool.units.iter().map(|u| u.members.len()).collect();
    assert_eq!(sizes.iter().sum::<usize>(), 17);
}
