//! Equivalence and determinism suite for the pipeline-parallel streaming
//! core.
//!
//! Properties pinned here:
//!
//! * **Batch = stream** — every ported chain entry point (`run_batch`,
//!   `revise_dataset`, `preliminary_filter`, expert revision, ChatGPT
//!   rating) produces identical results through its streaming variant
//!   under [`Feed::Batch`], and the executor's `run_dataset` is
//!   digest-identical to `run_stream` over the same pairs.
//! * **Streaming determinism** — with faults, retries, and a breaker
//!   active, any (thread count 1..=16, queue capacity, schedule) produces
//!   a digest-identical run: lane count and queue depth are performance
//!   knobs, never semantics.
//! * **Sustained-feed determinism** — admission-control shedding is a
//!   function of the arrival model alone, so the shed set is identical
//!   across thread counts and queue depths.
//! * **Mid-stream crash-resume** — a journaled streaming run killed at
//!   any prefix resumes digest-identical, for batch and sustained feeds;
//!   a journal written under one feed refuses to resume under another.
//!
//! `stream_matrix_cell` is the CI entry point: `scripts/ci.sh` runs it
//! under `COACHLM_STREAM_SEED` × `COACHLM_THREADS` × `COACHLM_QUEUE`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use coachlm::core::baselines::{AlpaGasusStage, CleanStage, HumanMergeStage};
use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::infer::{revise_dataset, revise_stream, CoachReviseStage};
use coachlm::core::pipeline::{run_batch, run_stream, ExpertAnnotateStage};
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::data::pair::Dataset;
use coachlm::expert::filter::{
    preliminary_filter, preliminary_filter_stream, PreliminaryFilterStage,
};
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::{ExpertReviseStage, ExpertReviser, RevisionRecord};
use coachlm::judge::chatgpt::{ChatGptRater, ChatGptRatingStage};
use coachlm::runtime::{
    BreakerPolicy, ChainOutput, Executor, ExecutorConfig, FaultPlan, Feed, Journal, RetryPolicy,
    Schedule, Stage, StreamSource,
};
use proptest::prelude::*;

struct Fixtures {
    coach: CoachLm,
    rater: ChatGptRater,
    reviser: ExpertReviser,
    pool: ExpertPool,
    kept: Vec<u64>,
    records: Vec<RevisionRecord>,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let (train, _) = generate(&GeneratorConfig::small(600, 0x57E4));
        let kept = preliminary_filter(&train, 0x57E4).kept;
        let reviser = ExpertReviser::new(0x57E4);
        let records = reviser.revise_dataset(&ExpertPool::paper_pool(), &train, &kept);
        Fixtures {
            coach: CoachLm::train(CoachConfig::default(), &records),
            rater: ChatGptRater::new(0x57E4),
            reviser,
            pool: ExpertPool::paper_pool(),
            kept,
            records,
        }
    })
}

/// The same chain selectors as `executor_determinism.rs`: every stage type
/// that rides the executor in production appears in at least one.
fn chain(sel: u8, f: &'static Fixtures) -> Vec<Box<dyn Stage + 'static>> {
    let record_refs: Vec<&RevisionRecord> = f.records.iter().collect();
    match sel % 6 {
        0 => vec![Box::new(CleanStage)],
        1 => vec![
            Box::new(CleanStage),
            Box::new(CoachReviseStage::new(&f.coach)),
        ],
        2 => vec![
            Box::new(CleanStage),
            Box::new(CoachReviseStage::new(&f.coach)),
            Box::new(ExpertAnnotateStage::new(7, true)),
        ],
        3 => vec![
            Box::new(PreliminaryFilterStage),
            Box::new(ExpertReviseStage::new(&f.reviser, &f.pool, &f.kept)),
        ],
        4 => vec![
            Box::new(AlpaGasusStage::new(&f.rater, 4.5)),
            Box::new(ChatGptRatingStage::new(&f.rater)),
        ],
        _ => vec![
            Box::new(HumanMergeStage::new(&record_refs, usize::MAX)),
            Box::new(ChatGptRatingStage::new(&f.rater)),
        ],
    }
}

fn dataset(n: usize, seed: u64) -> Dataset {
    let (d, _) = generate(&GeneratorConfig::small(n, seed));
    d
}

/// The chaos config the determinism properties run under: transient and
/// permanent faults, deadline-busting latency, retries, and a breaker —
/// everything the streaming core must keep deterministic.
fn chaos_config(seed: u64, threads: usize, schedule: Schedule, queue: usize) -> ExecutorConfig {
    ExecutorConfig::new(seed)
        .threads(threads)
        .schedule(schedule)
        .queue_capacity(queue)
        .fault_plan(
            FaultPlan::new(seed ^ 0xFA)
                .transient(0.2)
                .permanent(0.05)
                .latency(0.3, Duration::from_secs(8)),
        )
        .retry_policy(RetryPolicy::new(3, Duration::from_millis(10)))
        .breaker(
            BreakerPolicy::new()
                .window(32)
                .trip_ratio(0.2)
                .min_failures(4)
                .cooldown_epochs(1)
                .probes(4),
        )
}

/// A sustained feed hot enough to shed a visible slice of the batch.
fn overloaded_feed() -> Feed {
    Feed::Sustained {
        rate_per_sec: 400.0,
        drain_per_sec: 250.0,
        backlog_capacity: 8,
    }
}

fn assert_same(a: &ChainOutput, b: &ChainOutput, what: &str) {
    assert_eq!(a.digest(), b.digest(), "{what}: digest diverged");
    assert_eq!(a.shed, b.shed, "{what}: shed count diverged");
    assert_eq!(
        a.breaker_events, b.breaker_events,
        "{what}: breaker evolution diverged"
    );
    assert_eq!(a.items.len(), b.items.len(), "{what}");
    for (x, y) in a.items.iter().zip(&b.items) {
        assert_eq!(x.pair, y.pair, "{what}: item {}", x.index);
        assert_eq!(x.retained, y.retained, "{what}: item {}", x.index);
        assert_eq!(x.tags, y.tags, "{what}: item {}", x.index);
    }
}

/// Serializes to a JSON tree with wall-clock-derived fields removed:
/// cpu seconds and the throughput rates computed from them are real
/// measurements, deliberately outside the determinism contract.
fn json<T: serde::Serialize>(v: &T) -> serde_json::Value {
    fn scrub(v: &mut serde_json::Value) {
        match v {
            serde_json::Value::Array(items) => items.iter_mut().for_each(scrub),
            serde_json::Value::Object(entries) => {
                entries.retain(|(k, _)| {
                    !matches!(
                        k.as_str(),
                        "cpu_seconds" | "samples_per_sec" | "coachlm_samples_per_sec"
                    )
                });
                entries.iter_mut().for_each(|(_, v)| scrub(v));
            }
            _ => {}
        }
    }
    let mut value = serde_json::to_value(v);
    scrub(&mut value);
    value
}

/// Every chain-level batch entry point equals its streaming variant under
/// `Feed::Batch` — the old APIs are thin wrappers, and this pins that they
/// stay behaviour-identical, not just type-compatible.
#[test]
fn chain_entry_points_agree_batch_vs_stream() {
    let f = fixtures();
    let d = dataset(150, 0xBEEF);
    let config = ExecutorConfig::new(0x11).threads(4);

    let batch = run_batch(Some(&f.coach), &d, &config).expect("batch pipeline");
    let stream = run_stream(Some(&f.coach), &d, &config, Feed::Batch).expect("stream pipeline");
    assert_eq!(json(&batch), json(&stream), "pipeline report");

    let revised = revise_dataset(&f.coach, &d, &config);
    let revised_s = revise_stream(&f.coach, &d, &config, Feed::Batch);
    assert_eq!(json(&revised), json(&revised_s), "revise");

    let filtered = preliminary_filter(&d, 0x22);
    let filtered_s = preliminary_filter_stream(&d, 0x22, Feed::Batch);
    assert_eq!(json(&filtered), json(&filtered_s), "preliminary filter");

    let records = f.reviser.revise_dataset(&f.pool, &d, &f.kept);
    let records_s = f.reviser.revise_stream(&f.pool, &d, &f.kept, Feed::Batch);
    assert_eq!(json(&records), json(&records_s), "expert revision");

    let rated = f.rater.rate_dataset(&d);
    let rated_s = f.rater.rate_stream(&d, Feed::Batch);
    assert_eq!(json(&rated), json(&rated_s), "chatgpt rating");
}

/// Executor-level batch = stream over every ported chain shape.
#[test]
fn run_dataset_equals_run_stream_on_every_chain() {
    let d = dataset(120, 0xD15C);
    for sel in 0..6u8 {
        for threads in [1usize, 4] {
            let stages = chain(sel, fixtures());
            let exec = Executor::new(ExecutorConfig::new(0x33).threads(threads));
            let batch = exec.run_dataset(&stages, &d);
            let stream = exec.run_stream(&stages, StreamSource::batch(d.pairs.clone()));
            assert_same(&batch, &stream, &format!("chain {sel} x{threads}"));
        }
    }
}

proptest! {
    // The headline determinism property: thread count, queue capacity,
    // and schedule never change a streaming run's outcome, even with
    // faults, retries, and a breaker active.
    #[test]
    fn streaming_digest_is_invariant_under_threads_queue_schedule(
        size in 1usize..120,
        data_seed in 0u64..1_000,
        chain_seed in 0u64..10_000,
        threads in 2usize..=16,
        queue in 1usize..256,
        dynamic in 0u8..2,
        sel in 0u8..6,
    ) {
        let d = dataset(size, data_seed);
        let schedule = if dynamic == 1 { Schedule::Dynamic } else { Schedule::Static };
        let reference = Executor::new(chaos_config(chain_seed, 1, Schedule::Static, 64))
            .run_stream(&chain(sel, fixtures()), StreamSource::batch(d.pairs.clone()));
        let streamed = Executor::new(chaos_config(chain_seed, threads, schedule, queue))
            .run_stream(&chain(sel, fixtures()), StreamSource::batch(d.pairs.clone()));
        prop_assert_eq!(reference.digest(), streamed.digest());
        prop_assert_eq!(&reference.breaker_events, &streamed.breaker_events);
    }

    // Shedding under a sustained feed is part of the deterministic
    // outcome: the same arrival model sheds the same pairs at any thread
    // count and queue depth.
    #[test]
    fn sustained_shedding_is_config_invariant(
        size in 20usize..150,
        data_seed in 0u64..500,
        chain_seed in 0u64..5_000,
        threads in 2usize..=16,
        queue in 1usize..256,
        sel in 0u8..6,
    ) {
        let d = dataset(size, data_seed);
        let feed = overloaded_feed();
        let source = || StreamSource { pairs: d.pairs.clone(), feed: feed.clone() };
        let reference = Executor::new(chaos_config(chain_seed, 1, Schedule::Static, 64))
            .run_stream(&chain(sel, fixtures()), source());
        let streamed = Executor::new(chaos_config(chain_seed, threads, Schedule::Dynamic, queue))
            .run_stream(&chain(sel, fixtures()), source());
        prop_assert_eq!(reference.digest(), streamed.digest());
        prop_assert_eq!(reference.shed, streamed.shed);
    }
}

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_journal(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "coachlm-stream-equiv-{}-{tag}-{n}.wal",
        std::process::id()
    ))
}

/// Journaled streaming run under `feed`, killed at several prefixes;
/// every resume must land digest-identical to the uninterrupted run.
fn crash_resume_under_feed(feed: Feed, tag: &str) {
    let seed = 0x5EA5;
    let d = dataset(80, seed);
    let stages = chain(2, fixtures());
    let source = || StreamSource {
        pairs: d.pairs.clone(),
        feed: feed.clone(),
    };

    let gold =
        Executor::new(chaos_config(seed, 1, Schedule::Static, 64)).run_stream(&stages, source());

    let path = temp_journal(tag);
    let mut journal = Journal::create(&path)
        .expect("create journal")
        .sync_every(1);
    Executor::new(chaos_config(seed, 4, Schedule::Dynamic, 16))
        .run_stream_journaled(&stages, source(), &mut journal)
        .expect("journaled streaming run");
    drop(journal);
    let bytes = std::fs::read(&path).expect("read journal back");

    for permille in [0usize, 130, 333, 500, 777, 999, 1_000] {
        let len = bytes.len() * permille / 1_000;
        std::fs::write(&path, &bytes[..len]).expect("truncate journal");
        let mut journal = Journal::open(&path).expect("recover truncated journal");
        let resumed = Executor::new(chaos_config(seed, 3, Schedule::Static, 8))
            .run_stream_journaled(&stages, source(), &mut journal)
            .expect("resume");
        assert_same(
            &resumed,
            &gold,
            &format!("{tag}: cut at {len}/{}", bytes.len()),
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn mid_stream_crash_resumes_digest_identical_batch() {
    crash_resume_under_feed(Feed::Batch, "batch");
}

#[test]
fn mid_stream_crash_resumes_digest_identical_sustained() {
    crash_resume_under_feed(overloaded_feed(), "sustained");
}

/// The feed is part of the run fingerprint: a journal written under a
/// sustained arrival model must refuse to resume as a batch run (and vice
/// versa), instead of silently replaying mismatched shed decisions.
#[test]
fn journal_refuses_resume_under_a_different_feed() {
    let seed = 0xFEED;
    let d = dataset(40, seed);
    let stages = chain(1, fixtures());
    let path = temp_journal("feed-mismatch");

    let mut journal = Journal::create(&path).expect("create journal");
    Executor::new(chaos_config(seed, 2, Schedule::Static, 32))
        .run_stream_journaled(
            &stages,
            StreamSource {
                pairs: d.pairs.clone(),
                feed: overloaded_feed(),
            },
            &mut journal,
        )
        .expect("sustained journaled run");
    drop(journal);

    let mut journal = Journal::open(&path).expect("reopen");
    let err = Executor::new(chaos_config(seed, 2, Schedule::Static, 32)).run_stream_journaled(
        &stages,
        StreamSource::batch(d.pairs.clone()),
        &mut journal,
    );
    assert!(
        err.is_err(),
        "batch resume of a sustained journal must fail"
    );
    std::fs::remove_file(&path).ok();
}

/// CI streaming-matrix entry point: one cell per (seed, threads, queue
/// capacity), driven by environment variables. Without them the test is a
/// no-op, so a plain `cargo test` stays fast. Each cell checks both
/// schedules and both feeds against the single-threaded reference.
#[test]
fn stream_matrix_cell() {
    let (Ok(seed), Ok(threads), Ok(queue)) = (
        std::env::var("COACHLM_STREAM_SEED"),
        std::env::var("COACHLM_THREADS"),
        std::env::var("COACHLM_QUEUE"),
    ) else {
        return;
    };
    let seed: u64 = seed.parse().expect("COACHLM_STREAM_SEED must be a u64");
    let threads: usize = threads.parse().expect("COACHLM_THREADS must be a usize");
    let queue: usize = queue.parse().expect("COACHLM_QUEUE must be a usize");

    let d = dataset(200, seed ^ 0x57E0);
    for sel in 0..6u8 {
        for feed in [Feed::Batch, overloaded_feed()] {
            let source = || StreamSource {
                pairs: d.pairs.clone(),
                feed: feed.clone(),
            };
            let reference = Executor::new(chaos_config(seed, 1, Schedule::Static, 64))
                .run_stream(&chain(sel, fixtures()), source());
            for schedule in [Schedule::Static, Schedule::Dynamic] {
                let cell = Executor::new(chaos_config(seed, threads, schedule, queue))
                    .run_stream(&chain(sel, fixtures()), source());
                assert_same(
                    &cell,
                    &reference,
                    &format!("chain {sel} {schedule:?} x{threads} q{queue}"),
                );
            }
        }
    }
}
