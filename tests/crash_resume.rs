//! Crash-consistency suite for the executor's write-ahead journal.
//!
//! Properties pinned here, over the production stage chains:
//!
//! * **Kill anywhere** — truncating the journal at *every* byte offset
//!   (modelling a crash mid-write) still recovers: `Journal::open` drops
//!   the torn tail to the last consistent frontier, and the resumed run
//!   is bit-identical to an uninterrupted one in every deterministic
//!   field (items, reports, quarantine, breaker evolution).
//! * **Cross-config resume** — a journal written at one thread count and
//!   schedule resumes at any other, because outcomes never depend on
//!   either.
//! * **Chaos composition** — the above holds with a [`FaultPlan`]
//!   injecting transient/permanent faults and deadline-busting latency,
//!   and with a circuit breaker tripping mid-batch.
//!
//! `crash_matrix_cell` is the CI entry point: `scripts/ci.sh` runs it
//! under `COACHLM_CRASH_SEED` × `COACHLM_KILL_POINT` ×
//! `COACHLM_SCHEDULE` to sweep the crash matrix.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use coachlm::core::baselines::CleanStage;
use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::infer::CoachReviseStage;
use coachlm::core::pipeline::ExpertAnnotateStage;
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::data::pair::Dataset;
use coachlm::expert::filter::preliminary_filter;
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::ExpertReviser;
use coachlm::runtime::{
    BreakerPolicy, ChainOutput, Executor, ExecutorConfig, FaultPlan, Journal, RetryPolicy,
    Schedule, Stage,
};
use proptest::prelude::*;

struct Fixtures {
    coach: CoachLm,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let (train, _) = generate(&GeneratorConfig::small(600, 0xC7A5));
        let kept = preliminary_filter(&train, 0xC7A5).kept;
        let records =
            ExpertReviser::new(0xC7A5).revise_dataset(&ExpertPool::paper_pool(), &train, &kept);
        Fixtures {
            coach: CoachLm::train(CoachConfig::default(), &records),
        }
    })
}

fn chain(f: &'static Fixtures) -> Vec<Box<dyn Stage + 'static>> {
    vec![
        Box::new(CleanStage),
        Box::new(CoachReviseStage::new(&f.coach)),
        Box::new(ExpertAnnotateStage::new(7, true)),
    ]
}

/// The chaos config every test runs under: transient + permanent faults,
/// latency spikes past the coach-revise deadline budget, and a breaker
/// that trips mid-batch — the richest behaviour the journal must replay.
fn config(seed: u64, threads: usize, schedule: Schedule) -> ExecutorConfig {
    ExecutorConfig::new(seed)
        .threads(threads)
        .schedule(schedule)
        .fault_plan(
            FaultPlan::new(seed ^ 0xFA)
                .transient(0.2)
                .permanent(0.05)
                .latency(0.3, Duration::from_secs(8)),
        )
        .retry_policy(RetryPolicy::new(3, Duration::from_millis(10)))
        .breaker(
            BreakerPolicy::new()
                .window(32)
                .trip_ratio(0.2)
                .min_failures(4)
                .cooldown_epochs(1)
                .probes(4),
        )
}

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_journal(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "coachlm-crash-resume-{}-{tag}-{n}.wal",
        std::process::id()
    ))
}

fn dataset(n: usize, seed: u64) -> Dataset {
    let (d, _) = generate(&GeneratorConfig::small(n, seed));
    d
}

/// Golden uninterrupted run (no journal involved at all).
fn golden(d: &Dataset, seed: u64) -> ChainOutput {
    Executor::new(config(seed, 1, Schedule::Static)).run_dataset(&chain(fixtures()), d)
}

/// Writes a complete journal for the run and returns its bytes.
fn full_journal_bytes(d: &Dataset, seed: u64, path: &PathBuf) -> Vec<u8> {
    // sync_every(1) keeps the record stream ordered on disk record by
    // record, so truncation points cover every commit depth.
    let mut journal = Journal::create(path).expect("create journal").sync_every(1);
    Executor::new(config(seed, 4, Schedule::Dynamic))
        .run_journaled(&chain(fixtures()), d.pairs.clone(), &mut journal)
        .expect("journaled run");
    drop(journal);
    std::fs::read(path).expect("read journal back")
}

/// Truncates the journal to `len` bytes, recovers it, resumes, and checks
/// the result against the golden run.
#[allow(clippy::too_many_arguments)]
fn resume_at(
    path: &PathBuf,
    bytes: &[u8],
    len: usize,
    d: &Dataset,
    seed: u64,
    threads: usize,
    schedule: Schedule,
    gold: &ChainOutput,
) {
    std::fs::write(path, &bytes[..len]).expect("truncate journal");
    let mut journal = Journal::open(path).expect("recover truncated journal");
    let resumed = Executor::new(config(seed, threads, schedule))
        .resume_from(&chain(fixtures()), d.pairs.clone(), &mut journal)
        .expect("resume");
    assert_eq!(
        resumed.digest(),
        gold.digest(),
        "cut at byte {len}/{}: resumed run diverged ({schedule:?} x{threads})",
        bytes.len()
    );
    assert_eq!(
        resumed.breaker_events, gold.breaker_events,
        "cut at byte {len}"
    );
    assert_eq!(
        resumed.quarantine("q").items,
        gold.quarantine("q").items,
        "cut at byte {len}"
    );
    for (a, b) in resumed.items.iter().zip(&gold.items) {
        assert_eq!(a.pair, b.pair, "cut at byte {len}, item {}", a.index);
        assert_eq!(a.tags, b.tags);
        assert_eq!(a.failure, b.failure);
    }
}

/// Kill sweep: a crash can tear the journal at any byte. The cut set
/// covers every byte of the header and of the tail record (the torn-write
/// cases a real crash produces), every record boundary (the clean-commit
/// cases), and a stride across the interior. Every prefix must recover
/// and resume to the golden result.
#[test]
fn kill_at_every_byte_offset_of_the_tail_resumes_bit_identical() {
    let seed = 0x0FF5;
    let d = dataset(48, seed);
    let gold = golden(&d, seed);
    let path = temp_journal("every-byte");
    let bytes = full_journal_bytes(&d, seed, &path);

    // Reopen the intact journal purely to learn where the records sit.
    let spans: Vec<(u64, u64)> = Journal::open(&path)
        .expect("reopen intact journal")
        .record_spans()
        .to_vec();
    assert!(
        spans.len() > 2,
        "journal must hold a header and item records"
    );

    let mut cuts = std::collections::BTreeSet::new();
    let (h_start, h_end) = spans[0];
    let (t_start, t_end) = spans[spans.len() - 1];
    cuts.extend(h_start..=h_end); // torn header
    cuts.extend(t_start..=t_end); // torn tail record
    cuts.extend(spans.iter().map(|&(_, end)| end)); // clean commits
    cuts.extend((0..bytes.len() as u64).step_by(61)); // interior tears
    cuts.insert(bytes.len() as u64);

    for (i, len) in cuts.into_iter().enumerate() {
        // Alternate resume configs so the sweep also covers cross-config
        // resume without multiplying its cost.
        let (threads, schedule) = match i % 3 {
            0 => (1, Schedule::Static),
            1 => (4, Schedule::Dynamic),
            _ => (3, Schedule::Static),
        };
        resume_at(
            &path,
            &bytes,
            len as usize,
            &d,
            seed,
            threads,
            schedule,
            &gold,
        );
    }
    std::fs::remove_file(&path).ok();
}

/// A resumed journal can itself be killed and resumed again: crash loops
/// converge instead of corrupting state.
#[test]
fn double_crash_still_converges() {
    let seed = 0xD0C;
    let d = dataset(60, seed);
    let gold = golden(&d, seed);
    let path = temp_journal("double");
    let bytes = full_journal_bytes(&d, seed, &path);

    // First crash: keep a quarter of the journal, resume fully.
    std::fs::write(&path, &bytes[..bytes.len() / 4]).unwrap();
    let mut journal = Journal::open(&path).unwrap();
    Executor::new(config(seed, 2, Schedule::Dynamic))
        .resume_from(&chain(fixtures()), d.pairs.clone(), &mut journal)
        .unwrap();
    drop(journal);

    // Second crash: tear the regrown journal mid-record and resume again.
    let regrown = std::fs::read(&path).unwrap();
    assert!(
        regrown.len() > bytes.len() / 4,
        "resume must regrow the journal"
    );
    resume_at(
        &path,
        &regrown,
        regrown.len() - regrown.len() / 3,
        &d,
        seed,
        4,
        Schedule::Static,
        &gold,
    );
    std::fs::remove_file(&path).ok();
}

// Randomised crash matrix: any (seed, kill fraction, thread count,
// schedule) resumes bit-identical to the uninterrupted run.
proptest! {
    #[test]
    fn any_crash_point_resumes_bit_identical(
        seed in 0u64..1_000,
        kill_permille in 0usize..1_000,
        threads in 1usize..9,
        dynamic in 0u8..2,
    ) {
        let d = dataset(40, seed ^ 0x9A9A);
        let gold = golden(&d, seed);
        let path = temp_journal("prop");
        let bytes = full_journal_bytes(&d, seed, &path);
        let len = bytes.len() * kill_permille / 1_000;
        let schedule = if dynamic == 1 { Schedule::Dynamic } else { Schedule::Static };
        resume_at(&path, &bytes, len, &d, seed, threads, schedule, &gold);
        std::fs::remove_file(&path).ok();
    }
}

/// CI crash-matrix entry point: one cell per (seed, kill point, schedule),
/// driven by environment variables. Without them the test is a no-op, so
/// a plain `cargo test` stays fast.
#[test]
fn crash_matrix_cell() {
    let (Ok(seed), Ok(kill), Ok(schedule)) = (
        std::env::var("COACHLM_CRASH_SEED"),
        std::env::var("COACHLM_KILL_POINT"),
        std::env::var("COACHLM_SCHEDULE"),
    ) else {
        return;
    };
    let seed: u64 = seed.parse().expect("COACHLM_CRASH_SEED must be a u64");
    let kill_percent: usize = kill.parse().expect("COACHLM_KILL_POINT must be 0..=100");
    assert!(kill_percent <= 100, "COACHLM_KILL_POINT must be 0..=100");
    let schedule = match schedule.as_str() {
        "static" => Schedule::Static,
        "dynamic" => Schedule::Dynamic,
        other => panic!("COACHLM_SCHEDULE must be static|dynamic, got {other}"),
    };

    let d = dataset(200, seed ^ 0xCE11);
    let gold = golden(&d, seed);
    let path = temp_journal(&format!("matrix-{seed}-{kill_percent}"));
    let bytes = full_journal_bytes(&d, seed, &path);
    let len = bytes.len() * kill_percent / 100;
    for threads in [1, 4, 8, 16] {
        resume_at(&path, &bytes, len, &d, seed, threads, schedule, &gold);
    }
    std::fs::remove_file(&path).ok();
}
