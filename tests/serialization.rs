//! Serialization and persistence across the facade API.

use coachlm::data::category::Category;
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::data::pair::{Dataset, InstructionPair};

#[test]
fn generated_dataset_round_trips_native_json() {
    let (d, _) = generate(&GeneratorConfig::small(300, 1));
    let json = d.to_json().unwrap();
    let back = Dataset::from_json(&json).unwrap();
    assert_eq!(d, back);
}

#[test]
fn alpaca_format_round_trip_preserves_text() {
    let (d, _) = generate(&GeneratorConfig::small(200, 2));
    let mut buf = Vec::new();
    d.write_alpaca_json(&mut buf).unwrap();
    let back = Dataset::read_alpaca_json("x", &buf[..]).unwrap();
    assert_eq!(back.len(), d.len());
    for (a, b) in d.iter().zip(back.iter()) {
        assert_eq!(a.instruction, b.instruction);
        assert_eq!(a.response, b.response);
    }
}

#[test]
fn unicode_and_control_characters_survive_json() {
    let mut d = Dataset::new("unicode");
    d.pairs.push(InstructionPair::new(
        0,
        "Explique le cycle de l'eau — 日本語もOK ✓",
        "Réponse avec \"quotes\", newlines\net tabulations\t!",
        Category(0),
    ));
    let json = d.to_json().unwrap();
    assert_eq!(Dataset::from_json(&json).unwrap(), d);
    let mut buf = Vec::new();
    d.write_alpaca_json(&mut buf).unwrap();
    let back = Dataset::read_alpaca_json("u", &buf[..]).unwrap();
    assert_eq!(back.pairs[0].response, d.pairs[0].response);
}

#[test]
fn adapter_serializes_and_restores() {
    use coachlm::lm::adapter::{Adapter, AdapterConfig};
    let mut a = Adapter::new(AdapterConfig::default());
    a.observe(
        "fix teh report becuase thier numbers look wrong in alot of places",
        "fix the report because their numbers look wrong in a lot of places now",
        "short answer",
        "Short answer. This is because the details matter. For example, check the totals.",
    );
    a.finalize();
    let json = serde_json::to_string(&a).unwrap();
    let back: Adapter = serde_json::from_str(&json).unwrap();
    assert_eq!(back.rule_pairs, a.rule_pairs);
    assert_eq!(
        back.response_rules.phrase_rule_count(),
        a.response_rules.phrase_rule_count()
    );
    assert!((back.elicitation() - a.elicitation()).abs() < 1e-12);
}

#[test]
fn test_sets_serialize_to_json() {
    use coachlm::data::testsets::{TestSet, TestSetKind};
    let ts = TestSet::build(TestSetKind::Vicuna80, 1);
    let json = serde_json::to_string(&ts).unwrap();
    assert!(json.contains("Vicuna80"));
    assert!(json.contains("reference"));
}

#[test]
fn failure_record_round_trips() {
    use coachlm::runtime::{FailureKind, FailureRecord};
    for kind in [FailureKind::RetriesExhausted, FailureKind::Fatal] {
        let rec = FailureRecord {
            stage: "coach-revise".into(),
            attempts: 3,
            error: "injected: transient — ünïcode \"quoted\"".into(),
            kind,
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: FailureRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }
}

#[test]
fn quarantine_round_trips_from_a_real_faulted_run() {
    use coachlm::core::baselines::CleanStage;
    use coachlm::runtime::{Executor, ExecutorConfig, FaultPlan, Quarantine, RetryPolicy, Stage};
    let (d, _) = generate(&GeneratorConfig::small(200, 8));
    let stages: Vec<Box<dyn Stage>> = vec![Box::new(CleanStage)];
    let out = Executor::new(
        ExecutorConfig::new(1)
            .threads(4)
            .fault_plan(FaultPlan::new(5).transient(0.3).permanent(0.1))
            .retry_policy(RetryPolicy::new(2, std::time::Duration::from_millis(1))),
    )
    .run_dataset(&stages, &d);
    let q = out.quarantine("clean-quarantine");
    assert!(
        !q.is_empty(),
        "the plan's rates guarantee quarantined pairs"
    );
    let json = serde_json::to_string_pretty(&q).unwrap();
    let back: Quarantine = serde_json::from_str(&json).unwrap();
    assert_eq!(back, q);
    // The remediation dataset view survives too.
    assert_eq!(back.dataset().len(), q.len());
}

#[test]
fn extended_stage_report_round_trips() {
    use coachlm::runtime::StageReport;
    use std::time::Duration;
    let mut report = StageReport {
        stage: "expert-annotate".into(),
        items_in: 500,
        items_out: 420,
        quarantined: 60,
        retries: 131,
        faults_injected: 191,
        timeouts: 17,
        degraded: 44,
        cpu_time: Duration::from_nanos(987_654_321_987),
        backoff_time: Duration::from_millis(1_310),
        latency_time: Duration::from_millis(8_400),
        ..StageReport::default()
    };
    report.counters.insert("revise:qa".into(), 77);
    let json = serde_json::to_string(&report).unwrap();
    let back: StageReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    assert_eq!(back.items_dropped(), 20);
    // The three time channels are disjoint; total_time sums them.
    assert_eq!(
        back.total_time(),
        back.cpu_time + back.backoff_time + back.latency_time
    );
}

#[test]
fn merged_quarantines_round_trip_like_a_resumed_run() {
    use coachlm::core::baselines::CleanStage;
    use coachlm::runtime::{Executor, ExecutorConfig, FaultPlan, Quarantine, RetryPolicy, Stage};
    let (d, _) = generate(&GeneratorConfig::small(300, 9));
    let stages: Vec<Box<dyn Stage>> = vec![Box::new(CleanStage)];
    let full = Executor::new(
        ExecutorConfig::new(1)
            .threads(4)
            .fault_plan(FaultPlan::new(5).transient(0.3).permanent(0.1))
            .retry_policy(RetryPolicy::new(2, std::time::Duration::from_millis(1))),
    )
    .run_dataset(&stages, &d)
    .quarantine("merged");
    assert!(
        full.len() >= 4,
        "the plan's rates guarantee quarantined pairs"
    );

    // Model an interrupted sweep: two partial quarantines with an
    // overlapping item (recorded on both sides of the crash). Merging in
    // either order reproduces the uninterrupted quarantine exactly.
    let mid = full.len() / 2;
    let first = Quarantine {
        name: "merged".into(),
        items: full.items[..=mid].to_vec(),
    };
    let second = Quarantine {
        name: "merged".into(),
        items: full.items[mid..].to_vec(),
    };
    let ab = first.clone().merge(second.clone());
    assert_eq!(ab, full);
    let ba = second.merge(first);
    assert_eq!(ba, full);

    let json = serde_json::to_string(&ab).unwrap();
    let back: Quarantine = serde_json::from_str(&json).unwrap();
    assert_eq!(back, ab);
}

#[test]
fn breaker_events_round_trip() {
    use coachlm::runtime::{BreakerEvent, BreakerState};
    let events = vec![
        BreakerEvent {
            stage: "coach-revise".into(),
            epoch: 3,
            from: BreakerState::Closed,
            to: BreakerState::Open,
        },
        BreakerEvent {
            stage: "coach-revise".into(),
            epoch: 4,
            from: BreakerState::Open,
            to: BreakerState::HalfOpen,
        },
    ];
    let json = serde_json::to_string(&events).unwrap();
    let back: Vec<BreakerEvent> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, events);
}
