//! Determinism and correctness suite for the revision cache and the
//! sharded driver (PR 7).
//!
//! Properties pinned here:
//!
//! * **Cache transparency** — over duplicate-heavy (Zipfian) input, a
//!   cached run is digest-identical to the *uncached content-keyed* run
//!   at any thread count, queue capacity, and schedule, with faults and
//!   retries active. Cache hits replay journal-visible effects exactly;
//!   they never introduce a second behaviour.
//! * **Near-tier correctness** — every `cache:near` reuse really is
//!   within the configured word edit-distance bound of some earlier item
//!   of the same category (checked against an independent recompute with
//!   [`edit_distance_bounded`]), and the near tier is deterministic.
//! * **Shard-merge order independence** — a sharded run merges to the
//!   unsharded digest at any shard count, and the merged quarantine is in
//!   `Quarantine::merge` canonical order regardless of shard layout.
//! * **Warm-cache crash-resume** — a journaled cached run killed at any
//!   prefix resumes digest-identical to the uninterrupted run (the cache
//!   state is folded into the journal fingerprint, so a policy change
//!   refuses to resume instead of replaying mismatched hits).
//!
//! `cache_matrix_cell` is the CI entry point: `scripts/ci.sh` runs it
//! under `COACHLM_CACHE_SEED` × `COACHLM_SHARDS` × `COACHLM_SKEW`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use coachlm::data::generator::{zipfian_duplicates, ZipfianConfig};
use coachlm::data::pair::InstructionPair;
use coachlm::runtime::shard::{run_sharded, run_sharded_journaled};
use coachlm::runtime::{
    CachePolicy, ChainOutput, Executor, ExecutorConfig, FaultPlan, Journal, JournalError,
    RetryPolicy, Schedule, Stage, StageCtx, StageItem, StageOutcome, StreamSource,
};
use coachlm::text::editdist::edit_distance_bounded;
use coachlm::text::intern::{Interner, Sym};
use proptest::prelude::*;
use rand::Rng;

/// Content-driven rewrite stage: all behaviour (randomised suffix, drop
/// decision) derives from the item's text and the executor-provided RNG,
/// never from `pair.id` or `item.index` — the contract that makes cached
/// replay and sharding transparent.
struct ContentRewrite;

impl Stage for ContentRewrite {
    fn name(&self) -> &str {
        "content-rewrite"
    }
    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let roll: u64 = ctx.rng.gen_range(0..10_000);
        item.pair.response.push_str(&format!(" [v{roll}]"));
        if item.pair.instruction.contains("discard me") {
            item.discard("content:discard");
        } else if roll.is_multiple_of(97) {
            item.tag("content:lucky");
        }
        StageOutcome::Ok
    }
    fn service_time(&self) -> Duration {
        // The virtual-time cost a cache hit avoids paying.
        Duration::from_millis(840)
    }
}

/// Content-driven failure stage: poison markers fail permanently.
struct ContentPoison;

impl Stage for ContentPoison {
    fn name(&self) -> &str {
        "content-poison"
    }
    fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
        if item.pair.instruction.contains("poison") {
            StageOutcome::fatal("organic: poison marker")
        } else {
            StageOutcome::Ok
        }
    }
}

fn stages() -> Vec<Box<dyn Stage>> {
    vec![Box::new(ContentPoison), Box::new(ContentRewrite)]
}

/// Zipfian-duplicated workload with organic drop/poison markers mixed in.
fn workload(distinct: usize, total: usize, exponent: f64, seed: u64) -> Vec<InstructionPair> {
    let mut pairs =
        zipfian_duplicates(&ZipfianConfig::stress(distinct, total, exponent, seed)).pairs;
    for p in pairs.iter_mut() {
        // Markers key off content, not id, so duplicates share their fate.
        let k: u64 = p.instruction.len() as u64;
        if k.is_multiple_of(17) {
            p.instruction.push_str(" poison");
        } else if k.is_multiple_of(13) {
            p.instruction.push_str(" discard me");
        }
    }
    pairs
}

/// Chaos config with faults and retries (no breaker: the cache and the
/// sharded driver both reject breaker configs by design).
fn chaos(seed: u64, threads: usize, schedule: Schedule, queue: usize) -> ExecutorConfig {
    ExecutorConfig::new(seed)
        .threads(threads)
        .schedule(schedule)
        .queue_capacity(queue)
        .fault_plan(FaultPlan::new(seed ^ 0xCAC).transient(0.15).permanent(0.02))
        .retry_policy(RetryPolicy::new(3, Duration::from_millis(10)))
}

fn assert_same(a: &ChainOutput, b: &ChainOutput, what: &str) {
    assert_eq!(a.digest(), b.digest(), "{what}: digest diverged");
    assert_eq!(a.items.len(), b.items.len(), "{what}");
    for (x, y) in a.items.iter().zip(&b.items) {
        assert_eq!(x.pair, y.pair, "{what}: item {}", x.index);
        assert_eq!(x.retained, y.retained, "{what}: item {}", x.index);
        assert_eq!(x.tags, y.tags, "{what}: item {}", x.index);
        assert_eq!(x.failure, y.failure, "{what}: item {}", x.index);
    }
}

proptest! {
    // The headline cache property: with exact-tier caching, the cached
    // run is digest-identical to the uncached content-keyed run at any
    // (threads, queue, schedule), with faults active — a hit replays
    // exactly what execution would have produced.
    #[test]
    fn cached_digest_equals_uncached_at_any_parallelism(
        distinct in 5usize..40,
        total in 30usize..200,
        exponent in 0.0f64..1.5,
        seed in 0u64..5_000,
        threads in 1usize..=8,
        queue in 1usize..128,
        dynamic in 0u8..2,
    ) {
        let pairs = workload(distinct, total, exponent, seed);
        let schedule = if dynamic == 1 { Schedule::Dynamic } else { Schedule::Static };
        let uncached = Executor::new(chaos(seed, 1, Schedule::Static, 64).content_keyed(true))
            .run(&stages(), pairs.clone());
        let cached = Executor::new(
            chaos(seed, threads, schedule, queue).revision_cache(CachePolicy::exact()),
        )
        .run(&stages(), pairs);
        assert_same(&uncached, &cached, "cached vs uncached");
        // Every admitted item is classified exactly once.
        prop_assert_eq!(cached.revision_cache.lookups(), total as u64);
    }

    // Shard-merge order independence: any shard count reproduces the
    // unsharded digest, and per-shard item counts partition the input.
    #[test]
    fn sharded_digest_equals_unsharded_at_any_shard_count(
        distinct in 5usize..40,
        total in 30usize..150,
        seed in 0u64..5_000,
        shards in 1usize..8,
        threads in 1usize..=4,
        cache in 0u8..2,
    ) {
        let pairs = workload(distinct, total, 1.0, seed);
        let mut config = chaos(seed, threads, Schedule::Dynamic, 32);
        if cache == 1 {
            config = config.revision_cache(CachePolicy::exact());
        }
        let base = Executor::new(config.clone()).run(&stages(), pairs.clone());
        let sharded = run_sharded(&config, &stages(), StreamSource::batch(pairs), shards)
            .expect("batch feed is always shardable");
        assert_same(&base, &sharded.output, "sharded vs unsharded");
        let routed: usize = sharded.shards.iter().map(|s| s.items).sum();
        prop_assert_eq!(routed, total);
        if cache == 1 {
            // Content routing co-locates duplicates: no hit is lost to
            // cross-shard splits.
            prop_assert_eq!(sharded.output.revision_cache.exact_hits, base.revision_cache.exact_hits);
        }
    }

    // Near-tier determinism + correctness: rerunning is bit-identical,
    // and every `cache:near` reuse is within the configured bound of an
    // earlier same-category item (independent recompute).
    #[test]
    fn near_tier_is_deterministic_and_within_bound(
        distinct in 5usize..30,
        total in 30usize..120,
        seed in 0u64..5_000,
        near_distance in 1usize..4,
        probes in 1usize..6,
    ) {
        let mut gen = ZipfianConfig::stress(distinct, total, 1.0, seed);
        gen.near_fraction = 0.4;
        let pairs = zipfian_duplicates(&gen).pairs;
        let policy = CachePolicy::exact().near(near_distance, probes);
        let config = ExecutorConfig::new(seed).threads(2).revision_cache(policy);
        let a = Executor::new(config.clone()).run(&stages(), pairs.clone());
        let b = Executor::new(config).run(&stages(), pairs.clone());
        assert_same(&a, &b, "near tier rerun");

        let mut interner = Interner::new();
        let syms: Vec<Vec<Sym>> = pairs
            .iter()
            .map(|p| {
                let mut s = interner.intern_words(&p.instruction);
                s.push(Sym(u32::MAX));
                s.extend(interner.intern_words(&p.response));
                s
            })
            .collect();
        for (i, item) in a.items.iter().enumerate() {
            if item.has_tag("cache:near") {
                let within = (0..i).any(|j| {
                    pairs[j].category == pairs[i].category
                        && edit_distance_bounded(&syms[j], &syms[i], near_distance).is_some()
                });
                prop_assert!(within, "near reuse at {i} has no in-bound predecessor");
            }
        }
    }
}

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "coachlm-cache-shard-{}-{tag}-{n}",
        std::process::id()
    ))
}

/// Warm-cache crash-resume: a journaled cached run killed at any prefix
/// converges to the uninterrupted digest — replayed representatives
/// rebuild the cache so later duplicates still replay the same effects.
#[test]
fn warm_cache_crash_resume_converges_to_uninterrupted_digest() {
    let seed = 0xCA5E;
    let pairs = workload(12, 90, 1.1, seed);
    let config = chaos(seed, 3, Schedule::Dynamic, 16).revision_cache(CachePolicy::exact());

    let gold = Executor::new(config.clone()).run(&stages(), pairs.clone());

    let path = temp_path("warm.wal");
    let mut journal = Journal::create(&path)
        .expect("create journal")
        .sync_every(1);
    Executor::new(config.clone())
        .run_journaled(&stages(), pairs.clone(), &mut journal)
        .expect("journaled cached run");
    drop(journal);
    let bytes = std::fs::read(&path).expect("read journal back");

    for permille in [0usize, 200, 500, 850, 1_000] {
        let len = bytes.len() * permille / 1_000;
        std::fs::write(&path, &bytes[..len]).expect("truncate journal");
        let mut journal = Journal::open(&path).expect("recover truncated journal");
        let resumed = Executor::new(config.clone())
            .run_journaled(&stages(), pairs.clone(), &mut journal)
            .expect("resume with warm cache");
        assert_same(&resumed, &gold, &format!("cut at {len}/{}", bytes.len()));
        assert_eq!(
            resumed.revision_cache, gold.revision_cache,
            "cache tallies converge too (cut at {len})"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// The cache policy is folded into the journal fingerprint: resuming
/// under a different policy (or without one) must refuse, not replay.
#[test]
fn journal_refuses_resume_under_a_different_cache_policy() {
    let seed = 0xCAFE;
    let pairs = workload(10, 40, 1.0, seed);
    let cached = chaos(seed, 2, Schedule::Static, 32).revision_cache(CachePolicy::exact());
    let path = temp_path("policy.wal");

    let mut journal = Journal::create(&path).expect("create journal");
    Executor::new(cached.clone())
        .run_journaled(&stages(), pairs.clone(), &mut journal)
        .expect("cached journaled run");
    drop(journal);

    for other in [
        chaos(seed, 2, Schedule::Static, 32),
        chaos(seed, 2, Schedule::Static, 32).revision_cache(CachePolicy::exact().near(2, 4)),
        chaos(seed, 2, Schedule::Static, 32).revision_cache(CachePolicy::exact().capacity(8)),
    ] {
        let mut journal = Journal::open(&path).expect("reopen");
        let err = Executor::new(other).run_journaled(&stages(), pairs.clone(), &mut journal);
        assert!(
            matches!(err, Err(JournalError::Incompatible(_))),
            "a policy change must refuse to resume"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// Sharded journaled runs resume per shard: truncating one shard's
/// journal re-executes only that shard, and the merged result still
/// matches the uninterrupted run.
#[test]
fn sharded_journaled_resume_matches_uninterrupted_run() {
    let seed = 0x5AD;
    let shards = 3;
    let pairs = workload(15, 120, 1.0, seed);
    let config = chaos(seed, 2, Schedule::Dynamic, 16).revision_cache(CachePolicy::exact());

    let gold = run_sharded(
        &config,
        &stages(),
        StreamSource::batch(pairs.clone()),
        shards,
    )
    .expect("batch feed is always shardable");

    let dir = temp_path("sharded");
    std::fs::create_dir_all(&dir).expect("journal dir");
    let first = run_sharded_journaled(
        &config,
        &stages(),
        StreamSource::batch(pairs.clone()),
        shards,
        &dir,
    )
    .expect("journaled sharded run");
    assert_same(&gold.output, &first.output, "journaled first pass");

    // Kill shard 1's journal mid-way; the others stay complete.
    let victim = dir.join(format!("shard-1-of-{shards}.wal"));
    let bytes = std::fs::read(&victim).expect("read shard journal");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate shard journal");

    let resumed = run_sharded_journaled(
        &config,
        &stages(),
        StreamSource::batch(pairs.clone()),
        shards,
        &dir,
    )
    .expect("sharded resume");
    assert_same(&gold.output, &resumed.output, "sharded resume");
    let replayed: usize = resumed.shards.iter().map(|s| s.replayed).sum();
    assert!(replayed > 0, "untouched shards replay their journals");
    std::fs::remove_dir_all(&dir).ok();
}

/// CI cache/shard matrix entry point: one cell per (seed, shard count,
/// duplicate skew), driven by environment variables; a no-op without
/// them so plain `cargo test` stays fast. Each cell checks the cached
/// and the sharded-cached run against the uncached content-keyed
/// reference, under both schedules.
#[test]
fn cache_matrix_cell() {
    let (Ok(seed), Ok(shards), Ok(skew)) = (
        std::env::var("COACHLM_CACHE_SEED"),
        std::env::var("COACHLM_SHARDS"),
        std::env::var("COACHLM_SKEW"),
    ) else {
        return;
    };
    let seed: u64 = seed.parse().expect("COACHLM_CACHE_SEED must be a u64");
    let shards: usize = shards.parse().expect("COACHLM_SHARDS must be a usize");
    let skew: f64 = skew.parse().expect("COACHLM_SKEW must be an f64");

    let pairs = workload(25, 300, skew, seed ^ 0xCAC4E);
    let reference = Executor::new(chaos(seed, 1, Schedule::Static, 64).content_keyed(true))
        .run(&stages(), pairs.clone());
    for schedule in [Schedule::Static, Schedule::Dynamic] {
        for threads in [1usize, 4] {
            let config = chaos(seed, threads, schedule, 16).revision_cache(CachePolicy::exact());
            let cached = Executor::new(config.clone()).run(&stages(), pairs.clone());
            assert_same(
                &reference,
                &cached,
                &format!("cached {schedule:?} x{threads} skew {skew}"),
            );
            let sharded = run_sharded(
                &config,
                &stages(),
                StreamSource::batch(pairs.clone()),
                shards,
            )
            .expect("batch feed is always shardable");
            assert_same(
                &reference,
                &sharded.output,
                &format!("sharded {schedule:?} x{threads} s{shards} skew {skew}"),
            );
            assert_eq!(
                sharded.output.revision_cache.exact_hits, cached.revision_cache.exact_hits,
                "co-location preserves the hit tally"
            );
        }
    }
}
