//! Failure injection and edge-case robustness across the facade API.

use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::infer::revise_dataset;
use coachlm::core::pipeline::run_batch;
use coachlm::core::student::{tune_student, SkillParams};
use coachlm::data::category::Category;
use coachlm::data::pair::{Dataset, InstructionPair};
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::ExpertReviser;
use coachlm::judge::criteria::CriteriaEngine;
use coachlm::judge::pandalm::PandaLm;
use coachlm::runtime::{ExecutorConfig, FaultPlan, RetryPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn adversarial_pairs() -> Vec<InstructionPair> {
    vec![
        InstructionPair::new(0, "", "", Category(0)),
        InstructionPair::new(1, "   \t\n  ", "\n\n", Category(1)),
        InstructionPair::new(2, "?!.,;:", "...", Category(2)),
        InstructionPair::new(
            3,
            "日本語だけの指示です",
            "中文回答，没有英文。",
            Category(3),
        ),
        InstructionPair::new(
            4,
            "mixed 日本語 and English zwj \u{200D} text",
            "ok \u{FFFD} done",
            Category(4),
        ),
        InstructionPair::new(5, "word ".repeat(2000), "long ".repeat(4000), Category(5)),
        InstructionPair::new(6, "a", "b", Category(6)),
        InstructionPair::new(
            7,
            "### Instruction: nested template {} [x] (y)",
            "### Response: echo ### Response: echo",
            Category(7),
        ),
        InstructionPair::new(
            8,
            "\u{0}\u{1}\u{2}control",
            "bell\u{7}chars\u{8}",
            Category(8),
        ),
        InstructionPair::new(
            9,
            "emoji 🌊🌧️ instruction",
            "emoji 🌞 response with ✨",
            Category(9),
        ),
    ]
}

#[test]
fn criteria_engine_never_panics_and_stays_in_range() {
    let engine = CriteriaEngine::new();
    for p in adversarial_pairs() {
        let s = engine.score_pair(&p.instruction, &p.response);
        assert!(
            (0.0..=100.0).contains(&s.instruction),
            "{s:?} for {:?}",
            p.instruction
        );
        assert!((0.0..=100.0).contains(&s.response));
    }
}

#[test]
fn transducer_handles_adversarial_input() {
    let coach = CoachLm::train(CoachConfig::default(), &[]);
    let mut rng = StdRng::seed_from_u64(1);
    for p in adversarial_pairs() {
        let out = coach.revise_pair(&mut rng, &p.instruction, &p.response);
        // Output is valid UTF-8 by construction; just ensure no panic and
        // non-pathological growth.
        assert!(out.response.len() <= p.response.len() + 4096);
    }
}

#[test]
fn expert_reviser_handles_adversarial_input() {
    let reviser = ExpertReviser::new(2);
    let pool = ExpertPool::paper_pool();
    for p in adversarial_pairs() {
        if let Some(rec) = reviser.revise(&pool, &p) {
            assert!(rec.qc_iterations <= 4);
            assert!(!rec.revised.response.trim().is_empty() || p.response.trim().is_empty());
        }
    }
}

#[test]
fn dataset_revision_of_adversarial_dataset_completes() {
    let mut d = Dataset::new("adversarial");
    d.pairs = adversarial_pairs();
    // Reassign dense ids.
    for (i, p) in d.pairs.iter_mut().enumerate() {
        p.id = i as u64;
    }
    let coach = CoachLm::train(CoachConfig::default(), &[]);
    let out = revise_dataset(&coach, &d, &ExecutorConfig::new(3).threads(4));
    assert_eq!(out.dataset.len(), d.len());
    // Empty-sided pairs must never be "revised" into validity from nothing:
    // the §III-B1 validator replaces invalid outputs with originals.
    assert_eq!(out.dataset.get(0).unwrap().instruction, "");
}

#[test]
fn pipeline_batch_survives_adversarial_dataset_end_to_end() {
    let mut d = Dataset::new("adversarial-batch");
    d.pairs = adversarial_pairs();
    for (i, p) in d.pairs.iter_mut().enumerate() {
        p.id = i as u64;
    }
    let coach = CoachLm::train(CoachConfig::default(), &[]);
    // Full Clean -> CoachRevise -> ExpertAnnotate chain, with and without
    // the coach, must not panic on control chars, zero-width joiners, or
    // 2000-word pairs, and must account for every input pair.
    for coach_opt in [None, Some(&coach)] {
        let report = run_batch(coach_opt, &d, &ExecutorConfig::new(7).threads(4)).unwrap();
        assert_eq!(report.raw_pairs, d.len());
        assert_eq!(
            report.output.len() + report.dropped + report.quarantined,
            d.len(),
            "every adversarial pair must be retained, dropped, or quarantined"
        );
        assert_eq!(
            report.quarantined, 0,
            "no faults injected, none quarantined"
        );
    }
    // The same batch under an aggressive fault plan still accounts exactly.
    let report = run_batch(
        Some(&coach),
        &d,
        &ExecutorConfig::new(7)
            .threads(4)
            .fault_plan(FaultPlan::new(3).transient(0.4).permanent(0.2))
            .retry_policy(RetryPolicy::new(2, std::time::Duration::from_millis(1))),
    )
    .unwrap();
    assert_eq!(
        report.output.len() + report.dropped + report.quarantined,
        d.len()
    );
}

#[test]
fn judges_handle_empty_and_giant_candidates() {
    let judge = PandaLm::new(4);
    let giant = "very ".repeat(5000);
    for (a, b) in [
        ("", "reference text here"),
        (giant.as_str(), "short"),
        ("", ""),
    ] {
        let _ = judge.compare(1, "instruction", a, b); // must not panic
    }
}

#[test]
fn student_tuning_survives_degenerate_datasets() {
    let mut d = Dataset::new("degenerate");
    d.pairs = adversarial_pairs();
    let m = tune_student("m", &d, SkillParams::default(), 5);
    assert!((0.0..=1.0).contains(&m.global_skill()));
    let empty = Dataset::new("empty");
    let m2 = tune_student("m2", &empty, SkillParams::default(), 5);
    assert!((0.0..=1.0).contains(&m2.global_skill()));
}

#[test]
fn text_algorithms_handle_pathological_sizes() {
    use coachlm::text::editdist::{char_edit_distance, word_edit_distance};
    let long_a = "ab".repeat(5000);
    let long_b = "ba".repeat(5000);
    let d = char_edit_distance(&long_a, &long_b);
    assert!(d > 0 && d <= long_a.len());
    assert_eq!(word_edit_distance("", ""), 0);
    assert_eq!(char_edit_distance("", &long_a), long_a.len());
}
