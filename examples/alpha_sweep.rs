//! The human-input-ratio sweep (Fig 5a in miniature): train CoachLM at
//! several α values, revise the dataset, tune a student on each result, and
//! compare win rates on the CoachLM150 test set.
//!
//! ```text
//! cargo run --release --example alpha_sweep
//! ```

use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::evaluate::evaluate;
use coachlm::core::infer::revise_dataset;
use coachlm::core::student::{tune_student, SkillParams};
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::data::testsets::{TestSet, TestSetKind};
use coachlm::expert::filter::preliminary_filter;
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::ExpertReviser;
use coachlm::judge::pandalm::PandaLm;
use coachlm::runtime::ExecutorConfig;

fn main() {
    let (dataset, _) = generate(&GeneratorConfig::small(5000, 9));
    let kept = preliminary_filter(&dataset, 1).kept;
    let records = ExpertReviser::new(2).revise_dataset(&ExpertPool::paper_pool(), &dataset, &kept);
    let test_set = TestSet::build(TestSetKind::CoachLm150, 4);
    let judge = PandaLm::new(8);

    println!("alpha  C_a   p_apply  copy%   WR1    WR2    QS");
    for alpha in [0.0, 0.1, 0.3, 0.5, 0.7, 1.0] {
        let coach = CoachLm::train(
            CoachConfig {
                alpha,
                ..Default::default()
            },
            &records,
        );
        let revised = revise_dataset(&coach, &dataset, &ExecutorConfig::new(3).threads(4));
        let student = tune_student(
            "Alpaca-CoachLM",
            &revised.dataset,
            SkillParams::default(),
            6,
        );
        let result = evaluate(&student, &test_set, &judge);
        println!(
            "{alpha:.1}    {:4}  {:.3}    {:4.1}%  {:5.1}%  {:5.1}%  {:5.1}%",
            coach.trained_on(),
            coach.apply_probability(),
            100.0 * coach.adapter().copy_ratio(),
            100.0 * result.rates.wr1,
            100.0 * result.rates.wr2,
            100.0 * result.rates.qs,
        );
    }
    println!("\nExpected shape (paper Fig 5a): win rate peaks near alpha = 0.3 and");
    println!("declines mildly toward alpha = 1 as near-identity training pairs add noise.");
}
