//! Dataset cleaning end-to-end: the paper's §II pipeline on a small
//! dataset, with before/after quality measured by the ChatGPT-style rater
//! (the Fig 4 experiment in miniature). Writes the revised dataset as
//! Alpaca-format JSON.
//!
//! ```text
//! cargo run --release --example dataset_cleaning
//! ```

use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::infer::revise_dataset;
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::expert::filter::preliminary_filter;
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::ExpertReviser;
use coachlm::judge::chatgpt::ChatGptRater;
use coachlm::runtime::ExecutorConfig;

fn main() -> std::io::Result<()> {
    let (dataset, _) = generate(&GeneratorConfig::small(4000, 2024));

    // Expert revision on a sample (here: the whole small dataset).
    let kept = preliminary_filter(&dataset, 3).kept;
    let records = ExpertReviser::new(5).revise_dataset(&ExpertPool::paper_pool(), &dataset, &kept);

    // CoachLM revises every pair (with §III-B1 post-processing).
    let coach = CoachLm::train(CoachConfig::default(), &records);
    let revised = revise_dataset(&coach, &dataset, &ExecutorConfig::new(11).threads(4));
    println!(
        "revised {} pairs: {} responses changed, {} instructions changed, \
         {} invalid outputs replaced, {} leakage-skipped",
        revised.dataset.len(),
        revised.responses_changed,
        revised.instructions_changed,
        revised.replaced_invalid,
        revised.leakage_skipped
    );

    // Quality before/after, AlpaGasus-style.
    let rater = ChatGptRater::new(77);
    let before = rater.rate_dataset(&dataset);
    let after = rater.rate_dataset(&revised.dataset);
    println!(
        "ChatGPT rating: mean {:.2} -> {:.2}; share above 4.5: {:.1}% -> {:.1}%",
        before.mean,
        after.mean,
        100.0 * before.share_above_4_5,
        100.0 * after.share_above_4_5
    );

    // Persist in the Alpaca JSON format.
    let out = std::env::temp_dir().join("coachlm_revised.json");
    let file = std::fs::File::create(&out)?;
    revised
        .dataset
        .write_alpaca_json(std::io::BufWriter::new(file))?;
    println!("revised dataset written to {}", out.display());
    Ok(())
}
