//! Quickstart: train a CoachLM from expert revisions and revise a pair.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::expert::filter::preliminary_filter;
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::ExpertReviser;
use coachlm::judge::criteria::CriteriaEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A small synthetic instruction dataset (ALPACA52K-like quality mix).
    let (dataset, _provenance) = generate(&GeneratorConfig::small(2000, 42));
    println!("dataset: {} pairs", dataset.len());

    // 2. The expert workflow: preliminary filter, then rubric-driven
    //    revision of every flawed pair (the expert revision dataset R).
    let filter = preliminary_filter(&dataset, 1);
    println!(
        "preliminary filter: kept {} / excluded {}",
        filter.kept.len(),
        filter.excluded.len()
    );
    let reviser = ExpertReviser::new(7);
    let records = reviser.revise_dataset(&ExpertPool::paper_pool(), &dataset, &filter.kept);
    println!("expert revisions: {} pairs", records.len());

    // 3. Coach instruction tuning (ChatGLM2 backbone, alpha = 0.3).
    let coach = CoachLm::train(CoachConfig::default(), &records);
    println!(
        "CoachLM trained on C_a = {} examples; apply probability {:.3}",
        coach.trained_on(),
        coach.apply_probability()
    );

    // 4. Revise a flawed pair and score it before/after.
    let instruction = "Explain teh water cycle - do something about it";
    let response = "Water evaporates becuase of heat,";
    let mut rng = StdRng::seed_from_u64(9);
    let out = coach.revise_pair(&mut rng, instruction, response);

    let engine = CriteriaEngine::new();
    let before = engine.score_pair(instruction, response);
    let after = engine.score_pair(&out.instruction, &out.response);
    println!(
        "\nBEFORE  (instr {:.0}, resp {:.0})",
        before.instruction, before.response
    );
    println!("  INSTRUCTION: {instruction}");
    println!("  RESPONSE:    {response}");
    println!(
        "\nAFTER   (instr {:.0}, resp {:.0})",
        after.instruction, after.response
    );
    println!("  INSTRUCTION: {}", out.instruction);
    println!("  RESPONSE:    {}", out.response);
    println!("\nrepairs applied: {:?}", out.repairs);
}
