//! The §IV-A industrial deployment scenario: a data-management pipeline
//! with and without the CoachLM precursor stage, with person-day
//! accounting.
//!
//! ```text
//! cargo run --release --example data_platform
//! ```

use coachlm::core::coach::{CoachConfig, CoachLm};
use coachlm::core::pipeline::compare_deployment;
use coachlm::data::generator::{generate, GeneratorConfig};
use coachlm::expert::filter::preliminary_filter;
use coachlm::expert::pool::ExpertPool;
use coachlm::expert::revision::ExpertReviser;
use coachlm::runtime::ExecutorConfig;

fn main() {
    // Train CoachLM from one batch of expert revisions…
    let (train_data, _) = generate(&GeneratorConfig::small(2000, 31));
    let kept = preliminary_filter(&train_data, 1).kept;
    let records =
        ExpertReviser::new(2).revise_dataset(&ExpertPool::paper_pool(), &train_data, &kept);
    let coach = CoachLm::train(CoachConfig::default(), &records);

    // …then run a fresh production batch through the platform twice.
    let (raw, _) = generate(&GeneratorConfig::small(8000, 90));
    let cmp = compare_deployment(&coach, &raw, &ExecutorConfig::new(5).threads(4))
        .expect("pipeline chain always carries the expert-annotate stage");

    for report in [&cmp.manual, &cmp.assisted] {
        println!(
            "{:13} human-revised {:5}  post-edited {:5}  person-days {:6.1}  pairs/person-day {:5.1}",
            if report.with_coachlm { "with CoachLM:" } else { "manual:" },
            report.human_revised,
            report.post_edited,
            report.person_days,
            report.pairs_per_person_day,
        );
    }
    println!(
        "\nefficiency gain: {:.1}% (paper: net 15-20%)",
        100.0 * cmp.efficiency_gain()
    );
    println!(
        "CoachLM inference throughput: {:.1} samples/s (CPU)",
        cmp.assisted.coachlm_samples_per_sec
    );
}
