#!/usr/bin/env sh
# Runs the Criterion bench suite offline and writes machine-readable
# results to BENCH_5.json at the repo root (override with COACHLM_BENCH_OUT;
# the number tracks the PR that last changed the suite's shape).
#
# Each bench binary appends one JSONL record per benchmark (median ns/iter
# plus throughput where declared) to the file named by COACHLM_BENCH_JSON —
# see the report hook in crates/compat/criterion. This script collects the
# records and wraps them into a single JSON document:
#
#   { "suite": ..., "benches": [ {"bench": id, "median_ns": N, ...}, ... ] }
#
# Usage: scripts/bench.sh [bench-name ...]
#   With no arguments, runs every bench target (microbench,
#   executor_scaling, ngram_scoring, revision_cache, supervise). Pass
#   names to run a subset — the JSON output then covers only that subset.
#
# The revision_cache stress cell defaults to a 10M-pair workload; set
# COACHLM_CACHE_BENCH_PAIRS to shrink it for quick runs.
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

# Absolute path: cargo runs bench binaries with the package directory as
# CWD, so a relative path would land under crates/bench/.
jsonl="$(pwd)/target/bench_records.jsonl"
out="${COACHLM_BENCH_OUT:-BENCH_5.json}"
rm -f "$jsonl"
mkdir -p target

if [ "$#" -gt 0 ]; then
    benches="$*"
else
    benches="microbench executor_scaling ngram_scoring revision_cache supervise"
fi

for name in $benches; do
    echo "==> cargo bench --bench $name"
    COACHLM_BENCH_JSON="$jsonl" \
        cargo bench --offline -q -p coachlm-bench --bench "$name"
done

{
    printf '{\n'
    printf '  "suite": "coachlm hot paths",\n'
    printf '  "benches": [\n'
    sed -e 's/^/    /' -e '$!s/$/,/' "$jsonl"
    printf '  ]\n'
    printf '}\n'
} > "$out"

count=$(wc -l < "$jsonl")
echo "==> wrote $out ($count benchmarks)"
