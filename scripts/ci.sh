#!/usr/bin/env sh
# Full local CI: format check, lints, release build, tests.
#
# The workspace builds fully offline (all third-party dependencies are
# vendored under crates/compat/), so network access is never required —
# CARGO_NET_OFFLINE hard-fails any accidental registry round-trip.
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

# Static invariants: the token-level determinism & panic-safety catalogue
# (D1/D2/D3/P1/C1) plus the interprocedural analyses — nondeterminism
# taint reaching Stage::process/journal/digest sinks (T1) and fingerprint
# field coverage (F1). See DESIGN.md "Static invariants" and "Analyzer".
# Exit codes gate the run: 1 = findings, 3 = parse/IO errors (the tree
# could not be fully analyzed — treated as failure, not as clean). Parsed
# item trees are cached per content hash under target/coachlm-lint.cache,
# so warm CI runs re-analyze only files that changed.
echo "==> coachlm-lint (determinism, panic-safety & taint pass)"
cargo run --offline -p coachlm-lint --release -- --format json --out results/lint.json

echo "==> cargo test"
cargo test --offline --workspace -q

# Fault matrix: one chaos cell per (fault seed, schedule). Each cell checks
# the partition and thread-invariance properties of the fault-injection
# layer under a different deterministic fault pattern.
echo "==> fault matrix (3 fault seeds x 2 schedules)"
for seed in 11 29 53; do
    for sched in static dynamic; do
        echo "   -> seed=$seed schedule=$sched"
        COACHLM_FAULT_SEED=$seed COACHLM_SCHEDULE=$sched \
            cargo test --offline -q --test fault_injection fault_matrix_cell
    done
done

# Crash matrix: one cell per (seed, kill point, schedule). Each cell writes
# a journaled run, truncates the journal at the kill point, and checks that
# the resumed run is digest-identical to an uninterrupted one at several
# thread counts — the crash-consistency contract of the write-ahead journal.
echo "==> crash matrix (3 seeds x 3 kill points x 2 schedules)"
for seed in 11 29 53; do
    for kill in 25 50 90; do
        for sched in static dynamic; do
            echo "   -> seed=$seed kill=$kill% schedule=$sched"
            COACHLM_CRASH_SEED=$seed COACHLM_KILL_POINT=$kill COACHLM_SCHEDULE=$sched \
                cargo test --offline -q --test crash_resume crash_matrix_cell
        done
    done
done

# Streaming matrix: one cell per (seed, thread count, queue capacity).
# Each cell runs every ported chain through the pipeline-parallel
# streaming core — batch and sustained feeds, both schedules, faults and
# breaker active — and checks digest equality against the
# single-threaded reference. Thread count and queue depth are
# performance knobs only; any divergence here is a determinism bug.
echo "==> streaming matrix (3 seeds x 2 thread counts x 2 queue capacities)"
for seed in 11 29 53; do
    for threads in 2 8; do
        for queue in 16 256; do
            echo "   -> seed=$seed threads=$threads queue=$queue"
            COACHLM_STREAM_SEED=$seed COACHLM_THREADS=$threads COACHLM_QUEUE=$queue \
                cargo test --offline -q --test stream_equivalence stream_matrix_cell
        done
    done
done

# Cache/shard matrix: one cell per (seed, shard count, duplicate skew).
# Each cell runs a Zipfian-duplicated workload through the revision cache
# and the sharded driver — cached runs at both schedules and two thread
# counts, plus a sharded run — and checks digest equality against the
# uncached single-threaded reference. The cache and the shard fan-out are
# deployment knobs only; any divergence here is a determinism bug.
echo "==> cache/shard matrix (2 seeds x 2 shard counts x 2 skews)"
for seed in 11 53; do
    for shards in 2 8; do
        for skew in 0.4 1.3; do
            echo "   -> seed=$seed shards=$shards skew=$skew"
            COACHLM_CACHE_SEED=$seed COACHLM_SHARDS=$shards COACHLM_SKEW=$skew \
                cargo test --offline -q --test cache_shard cache_matrix_cell
        done
    done
done

# Tournament matrix: one cell per (seed, schedule, thread count). Each
# cell runs every registered strategy under chaos at the cell's executor
# config, checks digest equality against the single-threaded static
# reference, and verifies the debiased tournament matrix over the zoo's
# outputs is identical to the reference's. Strategy pipelines — including
# the looping Self-Review and auto-evol stages — must be execution-config
# invariant end to end.
echo "==> tournament matrix (2 seeds x 2 schedules x 2 thread counts)"
for seed in 11 53; do
    for sched in static dynamic; do
        for threads in 2 8; do
            echo "   -> seed=$seed schedule=$sched threads=$threads"
            COACHLM_TOURN_SEED=$seed COACHLM_TOURN_SCHEDULE=$sched COACHLM_TOURN_THREADS=$threads \
                cargo test --offline -q --test strategy_zoo tournament_matrix_cell
        done
    done
done

# Supervise matrix: one cell per (seed, shard count, kill point). Each
# cell runs the chaos chain with every shard in its own worker process —
# killing one worker early (clean frame boundary on the first frame),
# late (torn mid-frame write near the end of its partition), or not at
# all — and checks the merged digest against the in-process sharded
# reference, with restart counters proving the kill actually landed.
echo "==> supervise matrix (2 seeds x 2 shard counts x 3 kill points)"
for seed in 11 53; do
    for shards in 2 4; do
        for kill in early late none; do
            echo "   -> seed=$seed shards=$shards kill=$kill"
            COACHLM_SUPERVISE_SEED=$seed COACHLM_SUPERVISE_SHARDS=$shards COACHLM_SUPERVISE_KILL=$kill \
                cargo test --offline -q --test supervise_chaos
        done
    done
done

# Optional: regenerate BENCH_4.json from the Criterion suite. Off by
# default because benches dominate CI wall-clock; enable with COACHLM_BENCH=1.
if [ "${COACHLM_BENCH:-0}" = "1" ]; then
    echo "==> scripts/bench.sh"
    scripts/bench.sh
fi

echo "==> ci OK"
