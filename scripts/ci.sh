#!/usr/bin/env sh
# Full local CI: format check, lints, release build, tests.
#
# The workspace builds fully offline (all third-party dependencies are
# vendored under crates/compat/), so network access is never required —
# CARGO_NET_OFFLINE hard-fails any accidental registry round-trip.
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> ci OK"
