#!/usr/bin/env sh
# Full local CI: format check, lints, release build, tests.
#
# The workspace builds fully offline (all third-party dependencies are
# vendored under crates/compat/), so network access is never required —
# CARGO_NET_OFFLINE hard-fails any accidental registry round-trip.
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

# Optional: regenerate BENCH_2.json from the Criterion suite. Off by
# default because benches dominate CI wall-clock; enable with COACHLM_BENCH=1.
if [ "${COACHLM_BENCH:-0}" = "1" ]; then
    echo "==> scripts/bench.sh"
    scripts/bench.sh
fi

echo "==> ci OK"
