import json, re
def load(n):
    with open(f"results/{n}.json") as f: return json.load(f)
t3=load("table3"); t4=load("table4"); t7=load("table7"); f4=load("fig4")
t8=load("table8"); t9=load("table9"); t10=load("table10"); t11=load("table11")
f5=load("fig5"); dep=load("deploy")
pct=lambda x: f"{100*x:.1} %".replace(" %","%").replace("%"," %")
def p(x): return f"{100*x:.1f} %"
r3={r["reason"]: r["measured"] for r in t3["reasons"]}
t4rows={r["kind"]: r["measured"] for r in t4["rows"]}
def t9row(name):
    row=[r for r in t9["rows"] if r["model"]==name][0]
    return [res["wr1"] for res in row["results"]]
al=t9row("Alpaca"); cl=t9row("Alpaca-CoachLM")
coach=f5["coachlm_sweep"]; human=f5["human_sweep"]
peak=f5["best_alpha"]; fit=f5.get("fit") or {}
decline=(max(c["pandalm"] for c in coach)-coach[-1]["pandalm"])
t11rows={r.get("backbone"): r["wr1"] for r in t11["rows"]}
subs={
 "⟨t3.invalid⟩": p(r3["Invalid Input"]), "⟨t3.expertise⟩": p(r3["Beyond Expertise"]),
 "⟨t3.workload⟩": p(r3["Massive Workload"]), "⟨t3.multimodal⟩": p(r3["Multi-modal"]),
 "⟨t3.safety⟩": p(r3["Safety"]),
 "⟨t3.excluded⟩": f"{t3['excluded']} / {t3['total']} ({p(t3['exclusion_ratio'])})",
 "⟨t4.i.adjust⟩": p(t4rows["Adjust language/layout"]), "⟨t4.i.rewrite⟩": p(t4rows["Rewrite infeasible/ambiguous"]),
 "⟨t4.i.diversify⟩": p(t4rows["Diversify context"]), "⟨t4.r.diversify⟩": p(t4rows["Diversify/expand reasoning"]),
 "⟨t4.r.rewrite⟩": p(t4rows["Rewrite fluency/relevance/logic"]), "⟨t4.r.adjust⟩": p(t4rows["Adjust layout/tone"]),
 "⟨t4.r.correct⟩": p(t4rows["Correct facts/calculations"]), "⟨t4.r.other⟩": p(t4rows["Safety & other"]),
 "⟨t4.revised⟩": f"{t4['revised']} / {t4['kept']} ({p(t4['revised_share'])})",
 "⟨t4.ishare⟩": f"{t4['instruction_revised']} / {t4['revised']} ({p(t4['instruction_share'])})",
 "⟨t7.iw⟩": f"{t7['original']['avg_instruction_words']:.1f} → {t7['revised']['avg_instruction_words']:.1f}",
 "⟨t7.ie⟩": f"{t7['revised']['avg_instruction_edit']:.1f}",
 "⟨t7.rw⟩": f"{t7['original']['avg_response_words']:.1f} → {t7['revised']['avg_response_words']:.1f}",
 "⟨t7.re⟩": f"{t7['revised']['avg_response_edit']:.1f}",
 "⟨t7.invalid⟩": p(t7['replaced_invalid']/52002), "⟨t7.leak⟩": p(t7['leakage_skipped']/52002),
 "⟨f4.mean⟩": f"{f4['before']['mean']:.2f} → {f4['after']['mean']:.2f}",
 "⟨f4.share⟩": f"{p(f4['before']['above_4_5'])} → {p(f4['after']['above_4_5'])}",
 "⟨t8.resp⟩": f"{t8['responses']['original']['avg']:.1f} → {t8['responses']['revised']['avg']:.1f}",
 "⟨t8.instr⟩": f"{t8['subset_instructions']['original']['avg']:.1f} → {t8['subset_instructions']['revised']['avg']:.1f}",
 "⟨t8.sub⟩": f"{t8['subset_responses']['original']['avg']:.1f} → {t8['subset_responses']['revised']['avg']:.1f}",
 "⟨t9.alpaca⟩": p(al[0]), "⟨t9.coachlm⟩": p(cl[0]),
 "⟨t10.alpaca⟩": f"{t10['alpaca']['avg']:.1f}", "⟨t10.coachlm⟩": f"{t10['alpaca_coachlm']['avg']:.1f}",
 "⟨f5.peak⟩": f"α = {peak:.1f}",
 "⟨f5.decline⟩": f"−{100*decline:.1f} pp at α = 1",
 "⟨f5.slope⟩": f"{fit.get('slope_pct_per_k', float('nan')):.2f}",
 "⟨f5.r2⟩": f"{fit.get('r2', float('nan')):.2f}",
 "⟨f5.crossover⟩": f"{f5.get('crossover_k') or float('nan'):.1f}",
 "⟨f5.ca⟩": str(coach[3]["trained_on"]),
 "⟨t11.alpaca⟩": p(t11rows.get("none")), "⟨t11.llama⟩": p(t11rows.get("LLaMA")),
 "⟨t11.chatglm⟩": p(t11rows.get("ChatGLM")), "⟨t11.chatglm2⟩": p(t11rows.get("ChatGLM2")),
 "⟨d.manual⟩": f"{dep['manual']['rate']:.1f}", "⟨d.assisted⟩": f"{dep['assisted']['rate']:.1f}",
 "⟨d.gain⟩": p(dep['efficiency_gain']), "⟨d.sps⟩": f"{dep['assisted']['samples_per_sec']:.0f}",
}
s=open("EXPERIMENTS.md").read()
for k,v in subs.items(): s=s.replace(k,v)
# Table IX per-set cells
for i,ph in enumerate(["62.6 / ⟨..⟩","38.8 / ⟨..⟩","53.8 / ⟨..⟩"]):
    s=s.replace(ph, ph.split(" /")[0]+" / "+p(al[i+1]),1)
for i,ph in enumerate(["83.5 / ⟨..⟩","46.9 / ⟨..⟩","76.0 / ⟨..⟩"]):
    s=s.replace(ph, ph.split(" /")[0]+" / "+p(cl[i+1]),1)
open("EXPERIMENTS.md","w").write(s)
rest=re.findall(r"⟨[^⟩]*⟩", s)
print("remaining placeholders:", rest)
